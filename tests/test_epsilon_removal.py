"""Tests for weighted epsilon removal, validated against brute force."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import DecodeError, GraphError
from repro.datasets import TaskConfig, generate_task
from repro.decoder import BeamSearchConfig, ViterbiDecoder
from repro.decoder.brute_force import brute_force_best_path
from repro.wfst import CompiledWfst, EPSILON, Fst
from repro.wfst.epsilon_removal import count_epsilon_arcs, remove_epsilons
from tests.test_brute_force_equivalence import make_random_fst, make_scores


def fst_of(graph_or_fst):
    return graph_or_fst


class TestBasics:
    def test_simple_chain_folds(self):
        # 0 --a--> 1 --eps--> 2 --b--> 3 becomes 0 --a--> 1 --b--> 3.
        fst = Fst()
        s0, s1, s2, s3 = fst.add_states(4)
        fst.set_start(s0)
        fst.add_arc(s0, 1, 0, -0.1, s1)
        fst.add_arc(s1, EPSILON, 0, -0.2, s2)
        fst.add_arc(s2, 2, 0, -0.3, s3)
        fst.set_final(s3)
        out = remove_epsilons(fst)
        assert out.num_epsilon_arcs() == 0
        # The folded arc carries the epsilon weight.
        state = out.start
        arc_a = out.arcs(state)[0]
        arc_b = out.arcs(arc_a.dest)[0]
        assert arc_b.weight == pytest.approx(-0.5)

    def test_final_weight_folds_through_epsilon(self):
        fst = Fst()
        s0, s1 = fst.add_states(2)
        fst.set_start(s0)
        fst.add_arc(s0, 1, 0, -0.1, s1)
        end = fst.add_state()
        fst.add_arc(s1, EPSILON, 0, -0.2, end)
        fst.set_final(end, -0.3)
        out = remove_epsilons(fst)
        finals = [s for s in out.states() if out.is_final(s)]
        assert any(
            out.final_weight(s) == pytest.approx(-0.5) for s in finals
        )

    def test_output_carrying_epsilons_kept(self):
        fst = Fst()
        s0, s1, s2 = fst.add_states(3)
        fst.set_start(s0)
        fst.add_arc(s0, 1, 0, 0.0, s1)
        fst.add_arc(s1, EPSILON, 7, -0.1, s2)  # emits word 7
        fst.set_final(s2)
        out = remove_epsilons(fst)
        free, carrying = count_epsilon_arcs(out)
        assert free == 0
        assert carrying == 1

    def test_epsilon_cycle_rejected(self):
        fst = Fst()
        s0 = fst.add_state()
        fst.set_start(s0)
        fst.set_final(s0)
        fst.add_arc(s0, EPSILON, 0, -0.1, s0)
        with pytest.raises(GraphError):
            remove_epsilons(fst)


class TestEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), frames=st.integers(1, 4))
    def test_best_path_preserved(self, seed, frames):
        """Removal must not change the best-path likelihood (brute force)."""
        rng = np.random.default_rng(seed)
        graph = make_random_fst(rng)
        scores = make_scores(rng, frames)

        mutable = graph.to_fst()
        removed = CompiledWfst.from_fst(remove_epsilons(mutable))

        try:
            _w1, before = brute_force_best_path(graph, scores)
        except DecodeError:
            before = None
        try:
            _w2, after = brute_force_best_path(removed, scores)
        except DecodeError:
            after = None

        if before is None:
            assert after is None
        else:
            assert after == pytest.approx(before, abs=1e-6)

    def test_task_graph_decodes_identically(self):
        task = generate_task(
            TaskConfig(vocab_size=30, corpus_sentences=150,
                       num_utterances=2, seed=23)
        )
        removed = CompiledWfst.from_fst(
            remove_epsilons(task.graph.to_fst())
        )
        assert removed.epsilon_fraction() == 0.0
        original = ViterbiDecoder(task.graph, BeamSearchConfig(beam=16.0))
        epsfree = ViterbiDecoder(removed, BeamSearchConfig(beam=16.0))
        for utt in task.utterances:
            a = original.decode(utt.scores)
            b = epsfree.decode(utt.scores)
            assert b.log_likelihood == pytest.approx(
                a.log_likelihood, abs=1e-6
            )
            assert b.words == a.words

