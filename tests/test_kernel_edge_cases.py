"""Kernel edge cases, asserted identically on every array backend.

Degenerate searches are where a compiled backend would quietly diverge
from the portable one -- empty gather frontiers, emptied beams,
single-state graphs, score ties under a histogram cap, zero-frame
utterances.  Each case here pins the exact behaviour (result or typed
``DecodeError``) and asserts it per backend; when numba is installed
the same cases additionally assert numpy/numba identity.
"""

import math

import numpy as np
import pytest

from repro.common.errors import DecodeError
from repro.acoustic.scorer import AcousticScores
from repro.decoder import BatchDecoder, DecoderConfig, numba_available
from repro.decoder.backends import resolve_backend
from repro.wfst import CompiledWfst, EPSILON, Fst

#: Every backend importable in this environment ("numpy" always).
BACKENDS = ["numpy"] + (["numba"] if numba_available() else [])

pytestmark = pytest.mark.parametrize("backend", BACKENDS)

# Phone / word ids.
A, B = 1, 2
WORD = 1


def dead_end_graph():
    """s0 --A--> s1(final), and s1 has no outgoing arcs at all."""
    fst = Fst()
    s0, s1 = fst.add_states(2)
    fst.set_start(s0)
    fst.add_arc(s0, A, WORD, math.log(0.9), s1)
    fst.set_final(s1, 0.0)
    return CompiledWfst.from_fst(fst)


def single_state_graph():
    """One final state with a self-loop on phone A."""
    fst = Fst()
    (s0,) = fst.add_states(1)
    fst.set_start(s0)
    fst.add_arc(s0, A, WORD, math.log(0.5), s0)
    fst.set_final(s0, 0.0)
    return CompiledWfst.from_fst(fst)


def fan_graph(branches):
    """Start state fanning to ``branches`` parallel equal-weight states.

    Every branch consumes phone A with identical arc weight, creating
    exact score ties for the histogram cap to break.
    """
    fst = Fst()
    states = fst.add_states(branches + 1)
    s0, rest = states[0], states[1:]
    fst.set_start(s0)
    for word, state in enumerate(rest, start=1):
        fst.add_arc(s0, A, word, math.log(0.5), state)
        fst.add_arc(state, B, EPSILON, math.log(0.5), state)
        fst.set_final(state, 0.0)
    return CompiledWfst.from_fst(fst)


def scores(rows, width=3):
    matrix = np.full((len(rows), width), -50.0)
    for f, row in enumerate(rows):
        for phone, logp in row.items():
            matrix[f, phone] = logp
    return AcousticScores(matrix)


def _decoder(graph, backend, **cfg):
    cfg.setdefault("beam", 20.0)
    return BatchDecoder(graph, DecoderConfig(backend=backend, **cfg))


def _summary(result):
    return (
        result.words,
        result.log_likelihood,
        result.reached_final,
        result.stats.tokens_pruned,
        result.stats.states_expanded,
        result.stats.arcs_processed,
        result.stats.tokens_created,
        tuple(result.stats.active_tokens_per_frame),
    )


class TestEmptiedBeam:
    def test_dead_end_raises_on_next_frame(self, backend):
        """A frame that empties the frontier is absorbed; the *next* frame
        raises the typed mid-utterance error."""
        decoder = _decoder(dead_end_graph(), backend)
        with pytest.raises(DecodeError, match="beam emptied .* frame 2"):
            decoder.decode(scores([{A: -0.1}] * 3))

    def test_finalize_after_emptied_beam_raises(self, backend):
        """Two frames on a one-arc graph: frame 1 empties the frontier,
        so finalize has no token to backtrack from."""
        decoder = _decoder(dead_end_graph(), backend)
        with pytest.raises(DecodeError, match="no active tokens"):
            decoder.decode(scores([{A: -0.1}] * 2))

    def test_session_reports_dead_beam(self, backend):
        frame = scores([{A: -0.1}]).matrix[0]
        decoder = _decoder(dead_end_graph(), backend)
        session = decoder.open_session()
        session.push_frame(frame)
        assert session.alive
        # One more frame walks off the graph: the push is absorbed but
        # the session is dead afterwards, and pushes/finalize say why.
        session.push_frame(frame)
        assert not session.alive
        with pytest.raises(DecodeError, match="beam emptied .* frame 2"):
            session.push_frame(frame)
        with pytest.raises(DecodeError, match="no active tokens"):
            session.finalize()

    def test_session_finalizes_before_dead_end(self, backend):
        frame = scores([{A: -0.1}]).matrix[0]
        decoder = _decoder(dead_end_graph(), backend)
        session = decoder.open_session()
        session.push_frame(frame)
        result = session.finalize()
        assert result.words == (WORD,)
        assert result.reached_final

    def test_finalize_falls_back_when_not_final(self, backend):
        """No token in a final state: best live token, reached_final=False."""
        fst = Fst()
        s0, s1, s2 = fst.add_states(3)
        fst.set_start(s0)
        fst.add_arc(s0, A, WORD, 0.0, s1)
        fst.add_arc(s1, A, EPSILON, 0.0, s2)
        fst.set_final(s2, 0.0)
        decoder = _decoder(CompiledWfst.from_fst(fst), backend)
        result = decoder.decode(scores([{A: -0.25}]))
        assert not result.reached_final
        assert result.words == (WORD,)
        assert result.log_likelihood == -0.25


class TestEmptyGather:
    def test_zero_count_rows(self, backend):
        resolved = resolve_backend(backend)
        first = np.array([4, 9, 0], dtype=np.int64)
        counts = np.zeros(3, dtype=np.int64)
        arc_idx, src = resolved.csr_gather(first, counts)
        assert arc_idx.size == 0 and src.size == 0
        assert arc_idx.dtype == np.int64 and src.dtype == np.int64

    def test_empty_frontier(self, backend):
        resolved = resolve_backend(backend)
        empty = np.empty(0, dtype=np.int64)
        arc_idx, src = resolved.csr_gather(empty, empty)
        assert arc_idx.size == 0 and src.size == 0
        arc_idx, src, dest, cand = resolved.expand_frame(
            empty, empty, np.empty(0), empty, np.empty(0), empty,
            np.zeros(3),
        )
        assert arc_idx.size == src.size == dest.size == cand.size == 0
        assert cand.dtype == np.float64


class TestSingleStateGraph:
    def test_self_loop_decodes(self, backend):
        decoder = _decoder(single_state_graph(), backend)
        result = decoder.decode(scores([{A: -0.5}] * 4))
        assert result.words == (WORD,) * 4
        assert result.reached_final
        assert result.log_likelihood == pytest.approx(
            4 * (math.log(0.5) - 0.5)
        )

    def test_cross_backend_identity(self, backend):
        base = _decoder(single_state_graph(), "numpy").decode(
            scores([{A: -0.5}] * 4)
        )
        other = _decoder(single_state_graph(), backend).decode(
            scores([{A: -0.5}] * 4)
        )
        assert _summary(other) == _summary(base)


class TestHistogramCapTies:
    """Exact score ties at the cap boundary.

    The vectorized discipline breaks cap ties deterministically (stable
    sort by score then state), so every array backend must keep the
    *same* survivors -- asserted against numpy; the scalar reference may
    legitimately keep a different equal-score subset, so it is not part
    of this comparison.
    """

    def test_tied_survivors_identical(self, backend):
        graph = fan_graph(branches=8)
        frames = scores([{A: -0.5}, {B: -0.5}, {B: -0.5}], width=3)
        base = _decoder(graph, "numpy", beam=30.0, max_active=3)
        other = _decoder(graph, backend, beam=30.0, max_active=3)
        assert _summary(other.decode(frames)) == _summary(base.decode(frames))

    def test_cap_keeps_search_deterministic(self, backend):
        graph = fan_graph(branches=8)
        frames = scores([{A: -0.5}, {B: -0.5}], width=3)
        decoder = _decoder(graph, backend, beam=30.0, max_active=3)
        first = decoder.decode(frames)
        second = decoder.decode(frames)
        assert _summary(first) == _summary(second)
        assert max(first.stats.active_tokens_per_frame) <= 3


class TestZeroFrames:
    def test_decode_rejects_empty_matrix(self, backend):
        decoder = _decoder(single_state_graph(), backend)
        with pytest.raises(DecodeError, match="no frames to decode"):
            decoder.decode(AcousticScores(np.empty((0, 3))))

    def test_session_finalize_rejects_zero_frames(self, backend):
        decoder = _decoder(single_state_graph(), backend)
        session = decoder.open_session()
        with pytest.raises(DecodeError, match="no frames to decode"):
            session.finalize()
        # The session stays open and usable after the rejected finalize.
        session.push_frame(scores([{A: -0.5}]).matrix[0])
        assert session.finalize().words == (WORD,)
