"""Tests for the DNN acoustic model, trainer, and scorers."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.acoustic import (
    Dnn,
    DnnConfig,
    DnnScorer,
    SyntheticScorer,
    TrainConfig,
    train_dnn,
)
from repro.acoustic.trainer import _backward
from repro.frontend import PhoneAlignment


@pytest.fixture()
def tiny_dnn():
    return Dnn(DnnConfig(input_dim=8, hidden_dims=(16,), num_classes=5), seed=3)


class TestDnnForward:
    def test_log_posteriors_normalised(self, tiny_dnn):
        x = np.random.default_rng(0).normal(size=(10, 8))
        log_post = tiny_dnn.log_posteriors(x)
        assert log_post.shape == (10, 5)
        sums = np.exp(log_post).sum(axis=1)
        assert np.allclose(sums, 1.0)

    def test_predict_shape(self, tiny_dnn):
        x = np.zeros((4, 8))
        assert tiny_dnn.predict(x).shape == (4,)

    def test_num_params(self, tiny_dnn):
        assert tiny_dnn.num_params == 8 * 16 + 16 + 16 * 5 + 5

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            DnnConfig(input_dim=0, hidden_dims=(4,), num_classes=3)
        with pytest.raises(ConfigError):
            DnnConfig(input_dim=4, hidden_dims=(0,), num_classes=3)


class TestGradients:
    def test_numerical_gradient_check(self, tiny_dnn):
        """Backprop must match finite differences."""
        rng = np.random.default_rng(1)
        x = rng.normal(size=(6, 8))
        y = rng.integers(0, 5, size=6)
        loss, grads_w, _grads_b = _backward(tiny_dnn, x, y)

        eps = 1e-6
        w = tiny_dnn.weights[0]
        for idx in [(0, 0), (3, 7), (7, 15)]:
            orig = w[idx]
            w[idx] = orig + eps
            loss_hi, _, _ = _backward(tiny_dnn, x, y)
            w[idx] = orig - eps
            loss_lo, _, _ = _backward(tiny_dnn, x, y)
            w[idx] = orig
            numeric = (loss_hi - loss_lo) / (2 * eps)
            assert grads_w[0][idx] == pytest.approx(numeric, abs=1e-4)


class TestTrainer:
    def test_learns_separable_task(self):
        rng = np.random.default_rng(2)
        centers = rng.normal(scale=3.0, size=(4, 10))
        labels = rng.integers(0, 4, size=600)
        feats = centers[labels] + rng.normal(scale=0.5, size=(600, 10))

        dnn = Dnn(DnnConfig(10, (32,), 4), seed=0)
        losses = train_dnn(
            dnn, feats, labels, TrainConfig(epochs=15, learning_rate=0.1, seed=0)
        )
        assert losses[-1] < losses[0] * 0.5
        accuracy = (dnn.predict(feats) == labels).mean()
        assert accuracy > 0.9

    def test_shape_mismatch_rejected(self, tiny_dnn):
        with pytest.raises(ConfigError):
            train_dnn(tiny_dnn, np.zeros((4, 8)), np.zeros(5, dtype=int))

    def test_label_out_of_range_rejected(self, tiny_dnn):
        with pytest.raises(ConfigError):
            train_dnn(tiny_dnn, np.zeros((2, 8)), np.array([0, 7]))


class TestScorers:
    def test_dnn_scorer_shape_and_epsilon_column(self, tiny_dnn):
        priors = DnnScorer.priors_from_labels(np.array([0, 1, 2, 3, 4]), 5)
        scorer = DnnScorer(tiny_dnn, priors)
        scores = scorer.score(np.zeros((7, 8)))
        assert scores.matrix.shape == (7, 6)
        assert (scores.matrix[:, 0] < -1e8).all()
        assert scores.num_phones == 5

    def test_priors_sum_to_one(self):
        priors = DnnScorer.priors_from_labels(np.array([0, 0, 1]), 3)
        assert np.exp(priors).sum() == pytest.approx(1.0)

    def test_synthetic_scorer_favours_true_phone(self):
        align = PhoneAlignment((3, 7), (5, 5))
        scorer = SyntheticScorer(num_phones=10, separation=5.0, noise=0.5, seed=1)
        scores = scorer.score(align)
        labels = align.frame_labels()
        for f in range(scores.num_frames):
            best = int(np.argmax(scores.matrix[f, 1:])) + 1
            assert best == labels[f]

    def test_synthetic_scores_are_log_likelihoods(self):
        align = PhoneAlignment((1,), (20,))
        scores = SyntheticScorer(num_phones=5, seed=2).score(align)
        assert (scores.matrix[:, 1:] <= 0).all()

    def test_score_accessors(self):
        align = PhoneAlignment((2,), (3,))
        scores = SyntheticScorer(num_phones=4, seed=3).score(align)
        assert scores.score(0, 2) == scores.matrix[0, 2]
        with pytest.raises(ConfigError):
            scores.score(0, 0)

    def test_invalid_scorer_config(self):
        with pytest.raises(ConfigError):
            SyntheticScorer(num_phones=1)
        with pytest.raises(ConfigError):
            SyntheticScorer(num_phones=5, separation=-1.0)
