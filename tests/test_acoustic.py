"""Tests for the DNN acoustic model, trainer, and scorers."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.acoustic import (
    Dnn,
    DnnConfig,
    DnnScorer,
    SyntheticScorer,
    TrainConfig,
    train_dnn,
)
from repro.acoustic.trainer import _backward
from repro.frontend import PhoneAlignment


@pytest.fixture()
def tiny_dnn():
    return Dnn(DnnConfig(input_dim=8, hidden_dims=(16,), num_classes=5), seed=3)


class TestDnnForward:
    def test_log_posteriors_normalised(self, tiny_dnn):
        x = np.random.default_rng(0).normal(size=(10, 8))
        log_post = tiny_dnn.log_posteriors(x)
        assert log_post.shape == (10, 5)
        sums = np.exp(log_post).sum(axis=1)
        assert np.allclose(sums, 1.0)

    def test_predict_shape(self, tiny_dnn):
        x = np.zeros((4, 8))
        assert tiny_dnn.predict(x).shape == (4,)

    def test_num_params(self, tiny_dnn):
        assert tiny_dnn.num_params == 8 * 16 + 16 + 16 * 5 + 5

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            DnnConfig(input_dim=0, hidden_dims=(4,), num_classes=3)
        with pytest.raises(ConfigError):
            DnnConfig(input_dim=4, hidden_dims=(0,), num_classes=3)


class TestGradients:
    def test_numerical_gradient_check(self, tiny_dnn):
        """Backprop must match finite differences."""
        rng = np.random.default_rng(1)
        x = rng.normal(size=(6, 8))
        y = rng.integers(0, 5, size=6)
        loss, grads_w, _grads_b = _backward(tiny_dnn, x, y)

        eps = 1e-6
        w = tiny_dnn.weights[0]
        for idx in [(0, 0), (3, 7), (7, 15)]:
            orig = w[idx]
            w[idx] = orig + eps
            loss_hi, _, _ = _backward(tiny_dnn, x, y)
            w[idx] = orig - eps
            loss_lo, _, _ = _backward(tiny_dnn, x, y)
            w[idx] = orig
            numeric = (loss_hi - loss_lo) / (2 * eps)
            assert grads_w[0][idx] == pytest.approx(numeric, abs=1e-4)


class TestTrainer:
    def test_learns_separable_task(self):
        rng = np.random.default_rng(2)
        centers = rng.normal(scale=3.0, size=(4, 10))
        labels = rng.integers(0, 4, size=600)
        feats = centers[labels] + rng.normal(scale=0.5, size=(600, 10))

        dnn = Dnn(DnnConfig(10, (32,), 4), seed=0)
        losses = train_dnn(
            dnn, feats, labels, TrainConfig(epochs=15, learning_rate=0.1, seed=0)
        )
        assert losses[-1] < losses[0] * 0.5
        accuracy = (dnn.predict(feats) == labels).mean()
        assert accuracy > 0.9

    def test_shape_mismatch_rejected(self, tiny_dnn):
        with pytest.raises(ConfigError):
            train_dnn(tiny_dnn, np.zeros((4, 8)), np.zeros(5, dtype=int))

    def test_label_out_of_range_rejected(self, tiny_dnn):
        with pytest.raises(ConfigError):
            train_dnn(tiny_dnn, np.zeros((2, 8)), np.array([0, 7]))


class TestScorers:
    def test_dnn_scorer_shape_and_epsilon_column(self, tiny_dnn):
        priors = DnnScorer.priors_from_labels(np.array([0, 1, 2, 3, 4]), 5)
        scorer = DnnScorer(tiny_dnn, priors)
        scores = scorer.score(np.zeros((7, 8)))
        assert scores.matrix.shape == (7, 6)
        assert (scores.matrix[:, 0] < -1e8).all()
        assert scores.num_phones == 5

    def test_priors_sum_to_one(self):
        priors = DnnScorer.priors_from_labels(np.array([0, 0, 1]), 3)
        assert np.exp(priors).sum() == pytest.approx(1.0)

    def test_synthetic_scorer_favours_true_phone(self):
        align = PhoneAlignment((3, 7), (5, 5))
        scorer = SyntheticScorer(num_phones=10, separation=5.0, noise=0.5, seed=1)
        scores = scorer.score(align)
        labels = align.frame_labels()
        for f in range(scores.num_frames):
            best = int(np.argmax(scores.matrix[f, 1:])) + 1
            assert best == labels[f]

    def test_synthetic_scores_are_log_likelihoods(self):
        align = PhoneAlignment((1,), (20,))
        scores = SyntheticScorer(num_phones=5, seed=2).score(align)
        assert (scores.matrix[:, 1:] <= 0).all()

    def test_score_accessors(self):
        align = PhoneAlignment((2,), (3,))
        scores = SyntheticScorer(num_phones=4, seed=3).score(align)
        assert scores.score(0, 2) == scores.matrix[0, 2]
        with pytest.raises(ConfigError):
            scores.score(0, 0)

    def test_invalid_scorer_config(self):
        with pytest.raises(ConfigError):
            SyntheticScorer(num_phones=1)
        with pytest.raises(ConfigError):
            SyntheticScorer(num_phones=5, separation=-1.0)


class TestDnnEdgeCases:
    def test_zero_frame_forward(self, tiny_dnn):
        log_post = tiny_dnn.log_posteriors(np.empty((0, 8)))
        assert log_post.shape == (0, 5)

    def test_single_frame_forward(self, tiny_dnn):
        log_post = tiny_dnn.log_posteriors(np.ones((1, 8)))
        assert log_post.shape == (1, 5)
        assert np.exp(log_post).sum() == pytest.approx(1.0)

    def test_normalization_round_trip(self, tiny_dnn):
        """set_normalization changes the forward pass; restoring the
        identity normalisation restores the exact original outputs."""
        x = np.random.default_rng(5).normal(size=(6, 8))
        before = tiny_dnn.log_posteriors(x)
        tiny_dnn.set_normalization(x.mean(axis=0), x.std(axis=0))
        normalised = tiny_dnn.log_posteriors(x)
        assert not np.array_equal(before, normalised)
        tiny_dnn.set_normalization(np.zeros(8), np.ones(8))
        after = tiny_dnn.log_posteriors(x)
        np.testing.assert_array_equal(before, after)

    def test_normalization_std_floor(self, tiny_dnn):
        """A zero std axis must not divide by zero."""
        tiny_dnn.set_normalization(np.zeros(8), np.zeros(8))
        assert np.isfinite(tiny_dnn.log_posteriors(np.ones((2, 8)))).all()

    def test_forward_batch_stability(self, tiny_dnn):
        """The invariant batched serving relies on: stacking frames with
        other frames changes no output bit (including across the
        GEMM_BLOCK_ROWS tail-padding boundary)."""
        rng = np.random.default_rng(9)
        x = rng.normal(size=(71, 8))  # not a multiple of the gemm block
        stacked = tiny_dnn.log_posteriors(x)
        for split in (1, 3, 32, 45):
            parts = [
                tiny_dnn.log_posteriors(x[i: i + split])
                for i in range(0, len(x), split)
            ]
            np.testing.assert_array_equal(np.vstack(parts), stacked)

    def test_scorer_batch_stability(self, tiny_dnn):
        priors = DnnScorer.priors_from_labels(np.arange(5), 5)
        scorer = DnnScorer(tiny_dnn, priors, acoustic_scale=0.7)
        feats = np.random.default_rng(11).normal(size=(40, 8))
        whole = scorer.score(feats).matrix
        halves = np.vstack(
            [scorer.score(feats[:17]).matrix, scorer.score(feats[17:]).matrix]
        )
        np.testing.assert_array_equal(whole, halves)


class TestScoresFootprint:
    def test_size_bytes_is_true_memory_footprint(self):
        """size_bytes reports the host-side float64 matrix, all frames."""
        scores = SyntheticScorer(num_phones=4, seed=0).score(
            PhoneAlignment((1, 2), (3, 4))
        )
        assert scores.matrix.dtype == np.float64
        assert scores.size_bytes == scores.matrix.nbytes
        assert scores.size_bytes == 7 * 5 * 8  # frames x width x float64

    def test_frame_bytes_on_chip_is_float32_row(self):
        """The accelerator's ALB holds one float32 per column per frame."""
        scores = SyntheticScorer(num_phones=4, seed=0).score(
            PhoneAlignment((1,), (6,))
        )
        assert scores.frame_bytes_on_chip == 5 * 4
        # The two views answer different questions and must not agree
        # for a float64 host matrix with more than one frame.
        assert scores.size_bytes == scores.num_frames * 2 * scores.frame_bytes_on_chip
