"""Tests for the GPU decoder and its timing model."""

import pytest

from repro.decoder import BeamSearchConfig, ViterbiDecoder
from repro.gpu import GTX980, GpuDnnModel, GpuTimingModel, GpuViterbiDecoder
from repro.gpu.decoder import GpuWorkload
from repro.gpu.model import dnn_flops_per_frame


class TestGpuDecoderEquivalence:
    def test_likelihoods_match_reference(self, small_task):
        """The data-parallel decoder must find the same best-path score."""
        ref = ViterbiDecoder(small_task.graph, BeamSearchConfig(beam=14.0))
        gpu = GpuViterbiDecoder(small_task.graph, beam=14.0)
        for utt in small_task.utterances:
            r = ref.decode(utt.scores)
            g, _work = gpu.decode(utt.scores)
            assert g.log_likelihood == pytest.approx(r.log_likelihood)
            assert g.words == r.words

    def test_arc_counts_match_reference(self, small_task):
        ref = ViterbiDecoder(small_task.graph, BeamSearchConfig(beam=14.0))
        gpu = GpuViterbiDecoder(small_task.graph, beam=14.0)
        utt = small_task.utterances[0]
        r = ref.decode(utt.scores)
        g, work = gpu.decode(utt.scores)
        assert work.arcs_expanded == r.stats.arcs_processed

    def test_max_active_respected(self, small_task):
        gpu = GpuViterbiDecoder(small_task.graph, beam=14.0, max_active=15)
        g, _ = gpu.decode(small_task.utterances[0].scores)
        assert max(g.stats.active_tokens_per_frame) <= 15


class TestGpuWorkloadCounters:
    def test_kernel_launches_scale_with_frames(self, small_task):
        gpu = GpuViterbiDecoder(small_task.graph, beam=14.0)
        _g, work = gpu.decode(small_task.utterances[0].scores)
        frames = small_task.utterances[0].num_frames
        assert work.kernel_launches >= 3 * frames
        assert work.frames == frames
        assert work.atomic_updates >= work.arcs_expanded


class TestGpuTimingModel:
    def test_time_increases_with_work(self):
        model = GpuTimingModel()
        small = GpuWorkload(kernel_launches=10, arcs_expanded=100)
        big = GpuWorkload(kernel_launches=10, arcs_expanded=100_000)
        assert model.search_seconds(big) > model.search_seconds(small)

    def test_launch_overhead_dominates_tiny_work(self):
        model = GpuTimingModel()
        work = GpuWorkload(kernel_launches=100, arcs_expanded=10)
        total = model.search_seconds(work)
        assert total == pytest.approx(
            100 * model.kernel_launch_s, rel=0.05
        )

    def test_energy_uses_measured_power(self):
        model = GpuTimingModel()
        work = GpuWorkload(kernel_launches=10, arcs_expanded=1000)
        assert model.search_energy_j(work) == pytest.approx(
            model.search_seconds(work) * 76.4
        )

    def test_table3_spec(self):
        assert GTX980.num_sms == 16
        assert GTX980.threads_per_sm == 2048
        assert GTX980.frequency_hz == pytest.approx(1.28e9)
        assert GTX980.technology_nm == 28
        assert GTX980.avg_power_w == pytest.approx(76.4)


class TestGpuDnnModel:
    def test_flops_per_frame(self):
        flops = dnn_flops_per_frame(10, (20,), 5)
        assert flops == 2 * (10 * 20 + 20 * 5)

    def test_seconds_linear_in_flops(self):
        model = GpuDnnModel()
        assert model.seconds(2e9) == pytest.approx(2 * model.seconds(1e9))

    def test_dnn_26x_faster_than_cpu(self):
        """Paper, Section I: the GPU speeds up the DNN by 26x vs the CPU."""
        from repro.energy import CpuTimingModel

        flops = dnn_flops_per_frame(440, (2048,) * 6, 3500)
        gpu_s = GpuDnnModel().seconds(flops)
        cpu_s = CpuTimingModel().dnn_seconds(flops)
        assert cpu_s / gpu_s == pytest.approx(26.0, rel=0.05)
