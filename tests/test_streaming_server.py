"""Tests for the continuous-batching StreamingServer.

Correctness anchor: any traffic pattern -- concurrent sessions, ragged
chunks, joins and leaves mid-flight -- produces exactly the words and
path scores of one-shot ``BatchDecoder.decode_batch``.
"""

import numpy as np
import pytest

from repro.common.errors import AdmissionError, ConfigError, DecodeError
from repro.decoder import BatchDecoder, BeamSearchConfig
from repro.system import ServerConfig, StreamingServer


@pytest.fixture()
def config():
    return BeamSearchConfig(beam=14.0, max_active=60)


@pytest.fixture()
def oneshot(small_task, config):
    decoder = BatchDecoder(small_task.graph, config)
    return decoder.decode_batch([u.scores for u in small_task.utterances])


class TestEquivalence:
    @pytest.mark.parametrize("chunk_frames", [1, 3, 10, 1000])
    def test_decode_streaming_matches_oneshot(
        self, small_task, config, oneshot, chunk_frames
    ):
        server = StreamingServer(small_task.graph, config)
        results = server.decode_streaming(
            [u.scores for u in small_task.utterances],
            chunk_frames=chunk_frames,
        )
        for expected, got in zip(oneshot, results):
            assert got.words == expected.words
            assert got.log_likelihood == expected.log_likelihood
            assert got.reached_final == expected.reached_final

    def test_unfused_fallback_matches(self, small_task, config, oneshot):
        server = StreamingServer(
            small_task.graph, config, ServerConfig(fused=False)
        )
        results = server.decode_streaming(
            [u.scores for u in small_task.utterances], chunk_frames=4
        )
        for expected, got in zip(oneshot, results):
            assert got.words == expected.words
            assert got.log_likelihood == expected.log_likelihood

    def test_sessions_join_and_leave_mid_flight(
        self, small_task, config, oneshot
    ):
        """Stagger arrivals so the sweep population changes constantly."""
        server = StreamingServer(small_task.graph, config)
        utts = small_task.utterances
        sids = {}
        offsets = {}
        for round_no in range(200):
            if round_no % 2 == 0 and len(sids) < len(utts):
                i = len(sids)
                sids[i] = server.open_session()
                offsets[i] = 0
            pushed = False
            for i, sid in sids.items():
                matrix = utts[i].scores.matrix
                if offsets[i] >= len(matrix):
                    continue
                chunk = matrix[offsets[i]: offsets[i] + 3]
                server.push(sid, chunk)
                offsets[i] += len(chunk)
                pushed = True
                if offsets[i] >= len(matrix):
                    server.close_input(sid)
            server.step()
            if not pushed and len(sids) == len(utts):
                break
        server.drain()
        assert server.stats.sessions_finalized == len(utts)
        for i, sid in sids.items():
            record = server.result(sid)
            assert record.ok
            assert record.result.words == oneshot[i].words
            assert record.result.log_likelihood == oneshot[i].log_likelihood


class TestScheduling:
    def test_max_batch_caps_sweep_occupancy(self, small_task, config):
        server = StreamingServer(
            small_task.graph, config, ServerConfig(max_batch=2)
        )
        server.decode_streaming(
            [u.scores for u in small_task.utterances], chunk_frames=5
        )
        assert server.stats.max_occupancy <= 2
        assert server.stats.frames_decoded == sum(
            u.num_frames for u in small_task.utterances
        )

    def test_max_batch_round_robins_instead_of_starving(
        self, small_task, config
    ):
        """With more ready sessions than max_batch, the cap rotates over
        them -- every session makes progress."""
        server = StreamingServer(
            small_task.graph, config, ServerConfig(max_batch=2)
        )
        sids = [server.open_session() for _ in range(3)]
        matrix = small_task.utterances[0].scores.matrix
        for sid in sids:
            server.push(sid, matrix[:6])
        for _ in range(3):
            assert server.step() == 2
        decoded = {
            sid: server._live[sid].stats.frames_decoded for sid in sids
        }
        assert all(count >= 1 for count in decoded.values()), decoded
        assert sum(decoded.values()) == 6

    def test_stats_recorded(self, small_task, config):
        server = StreamingServer(small_task.graph, config)
        scores = [u.scores for u in small_task.utterances]
        server.decode_streaming(scores, chunk_frames=5)
        stats = server.stats
        total = sum(u.num_frames for u in small_task.utterances)
        assert stats.frames_decoded == total
        assert stats.sweeps > 0
        assert stats.sessions_opened == len(scores)
        assert stats.sessions_finalized == len(scores)
        assert stats.busy_seconds > 0
        assert stats.aggregate_frames_per_second > 0
        assert 1.0 <= stats.mean_occupancy <= len(scores)

    def test_per_session_stats(self, small_task, config):
        server = StreamingServer(small_task.graph, config)
        utt = small_task.utterances[0]
        sid = server.open_session()
        server.push(sid, utt.scores)
        server.close_input(sid)
        server.drain()
        record = server.result(sid)
        assert record.stats.frames_pushed == utt.num_frames
        assert record.stats.frames_decoded == utt.num_frames
        assert record.stats.sweeps == utt.num_frames
        assert record.stats.decode_seconds > 0
        assert record.stats.frames_per_second > 0
        assert record.stats.mean_wait_s >= 0
        assert record.stats.max_wait_s >= record.stats.mean_wait_s
        assert record.stats.finalized_s is not None

    def test_partial_mid_stream(self, small_task, config):
        decoder = BatchDecoder(small_task.graph, config)
        server = StreamingServer(small_task.graph, config)
        utt = small_task.utterances[0]
        sid = server.open_session()
        server.push(sid, utt.scores.matrix[:8])
        server.drain()
        from repro.acoustic.scorer import AcousticScores

        expected = decoder.decode(AcousticScores(utt.scores.matrix[:8]))
        partial = server.partial(sid)
        assert partial.words == expected.words
        assert partial.log_likelihood == expected.log_likelihood
        # The session keeps decoding afterwards.
        server.push(sid, utt.scores.matrix[8:])
        server.close_input(sid)
        server.drain()
        assert server.result(sid).result.words == decoder.decode(utt.scores).words

    def test_pending_frames_and_live_ids(self, small_task, config):
        server = StreamingServer(small_task.graph, config)
        sid = server.open_session()
        assert server.live_session_ids == [sid]
        server.push(sid, small_task.utterances[0].scores.matrix[:5])
        assert server.pending_frames == 5
        server.step()
        assert server.pending_frames == 4
        server.close_input(sid)
        server.drain()
        assert server.live_session_ids == []
        assert server.finished_session_ids == [sid]


class TestErrors:
    def test_unknown_session_rejected(self, small_graph):
        server = StreamingServer(small_graph)
        with pytest.raises(DecodeError):
            server.push(99, np.zeros((1, 5)))
        with pytest.raises(DecodeError):
            server.result(99)

    def test_push_after_close_rejected(self, small_task):
        server = StreamingServer(small_task.graph)
        sid = server.open_session()
        server.close_input(sid)
        with pytest.raises(DecodeError):
            server.push(sid, small_task.utterances[0].scores)

    def test_result_of_live_session_rejected(self, small_task):
        server = StreamingServer(small_task.graph)
        sid = server.open_session()
        with pytest.raises(DecodeError):
            server.result(sid)

    def test_session_dying_mid_stream_surfaces_real_error(self):
        """A beam-emptied session reports the engine's error, not a
        confusing 'unknown/retired session' message, and remaining audio
        for it is dropped instead of crashing the push loop."""
        import math

        from repro.wfst import CompiledWfst, EPSILON, Fst

        fst = Fst()
        s0, s1, s2 = fst.add_states(3)
        fst.set_start(s0)
        fst.add_arc(s0, 1, 1, 0.0, s1)
        fst.add_arc(s1, EPSILON, EPSILON, math.log(0.9), s2)
        fst.set_final(s2, 0.0)
        graph = CompiledWfst.from_fst(fst)
        matrix = np.full((6, 3), -1e9)
        matrix[:, 1] = math.log(0.8)

        server = StreamingServer(graph, BeamSearchConfig(beam=30.0))
        with pytest.raises(DecodeError) as exc:
            server.decode_streaming([matrix], chunk_frames=2)
        assert "beam emptied" in str(exc.value) or "no active tokens" in str(
            exc.value
        )
        # Pushing to the retired session explains what happened to it.
        sid = server.finished_session_ids[0]
        with pytest.raises(DecodeError, match="retired"):
            server.push(sid, matrix[:1])

    def test_partial_of_dying_session_returns_none(self):
        """A dead-but-not-retired session polls as None instead of
        raising, so fleet-wide partial polling is safe."""
        import math

        from repro.wfst import CompiledWfst, EPSILON, Fst

        fst = Fst()
        s0, s1, s2 = fst.add_states(3)
        fst.set_start(s0)
        fst.add_arc(s0, 1, 1, 0.0, s1)
        fst.add_arc(s1, EPSILON, EPSILON, math.log(0.9), s2)
        fst.set_final(s2, 0.0)
        graph = CompiledWfst.from_fst(fst)
        matrix = np.full((2, 3), -1e9)
        matrix[:, 1] = math.log(0.8)

        server = StreamingServer(graph, BeamSearchConfig(beam=30.0))
        sid = server.open_session()
        server.push(sid, matrix)
        server.step()
        assert server.partial(sid) is not None  # one frame in: fine
        server.step()  # frame 2 finds only epsilon arcs: beam empties
        assert server.is_live(sid)
        assert server.partial(sid) is None

    def test_zero_frame_session_records_error(self, small_graph):
        server = StreamingServer(small_graph)
        sid = server.open_session()
        server.close_input(sid)
        server.drain()
        record = server.result(sid)
        assert not record.ok
        assert "no frames" in record.error

    def test_malformed_chunks_rejected_at_push(self, small_task):
        """Bad widths bounce at push() -- they can never reach a fused
        sweep where other sessions' frames would be lost."""
        server = StreamingServer(small_task.graph)
        sid = server.open_session()
        width = small_task.utterances[0].scores.matrix.shape[1]
        # Too narrow for the graph's phone ids.
        with pytest.raises(DecodeError):
            server.push(sid, np.zeros((2, 1)))
        # Width disagreeing with the fleet's established width.
        server.push(sid, small_task.utterances[0].scores.matrix[:2])
        other = server.open_session()
        with pytest.raises(DecodeError):
            server.push(other, np.full((2, width + 3), -1.0))

    def test_session_push_frame_validates_rows(self, small_task):
        from repro.decoder import BatchDecoder

        session = BatchDecoder(small_task.graph).open_session()
        with pytest.raises(DecodeError):
            session.push_frame(np.zeros(1))  # too narrow
        with pytest.raises(DecodeError):
            session.push_frame(
                np.zeros((2, small_task.utterances[0].scores.matrix.shape[1]))
            )  # not a row

    def test_invalid_configs_rejected(self, small_graph):
        with pytest.raises(ConfigError):
            ServerConfig(max_batch=0)
        server = StreamingServer(small_graph)
        with pytest.raises(ConfigError):
            server.decode_streaming([np.zeros((1, 5))], chunk_frames=0)

    def test_empty_batch(self, small_graph):
        assert StreamingServer(small_graph).decode_streaming([]) == []


class TestErrorIsolation:
    """Every rejected operation is typed and leaves other live sessions
    undisturbed: they keep decoding to exactly their one-shot words."""

    def _serve_out(self, server, sids, utts, oneshot, offsets=None):
        """Stream the fleet to completion and check it against one-shot.

        ``offsets`` carries frames already pushed before the error under
        test, so nothing is pushed twice."""
        offsets = dict(offsets or {})
        for i in sids:
            offsets.setdefault(i, 0)
        while any(offsets[i] < utts[i].num_frames for i in sids):
            for i, sid in sids.items():
                matrix = utts[i].scores.matrix
                if offsets[i] >= len(matrix):
                    continue
                server.push(sid, matrix[offsets[i]: offsets[i] + 4])
                offsets[i] += len(matrix[offsets[i]: offsets[i] + 4])
                if offsets[i] >= len(matrix):
                    server.close_input(sid)
            server.step()
        server.drain()
        for i, sid in sids.items():
            record = server.result(sid)
            assert record.ok, record.error
            assert record.result.words == oneshot[i].words
            assert record.result.log_likelihood == oneshot[i].log_likelihood

    def test_push_after_close_leaves_others_undisturbed(
        self, small_task, config, oneshot
    ):
        server = StreamingServer(small_task.graph, config)
        utts = small_task.utterances
        sids = {i: server.open_session() for i in range(len(utts))}
        victim = server.open_session()
        server.push(victim, utts[0].scores.matrix[:3])
        server.close_input(victim)
        with pytest.raises(DecodeError, match="closed"):
            server.push(victim, utts[0].scores.matrix[3:6])
        self._serve_out(server, sids, utts, oneshot)

    def test_join_at_admission_limit_leaves_others_undisturbed(
        self, small_task, config, oneshot
    ):
        """A join while the sweep queue is saturated (every admission
        slot holds a live session with buffered frames) sheds with a
        typed AdmissionError; the saturated fleet is untouched."""
        utts = small_task.utterances
        server = StreamingServer(
            small_task.graph, config, ServerConfig(max_sessions=len(utts))
        )
        sids = {i: server.open_session() for i in range(len(utts))}
        for i, sid in sids.items():
            server.push(sid, utts[i].scores.matrix[:4])
        with pytest.raises(AdmissionError, match="admission limit"):
            server.open_session()
        assert server.stats.sessions_opened == len(utts)
        self._serve_out(
            server, sids, utts, oneshot, offsets={i: 4 for i in sids}
        )

    def test_mid_stream_width_mismatch_leaves_others_undisturbed(
        self, small_task, config, oneshot
    ):
        """A session that switches score width mid-stream bounces at
        push() with a typed DecodeError; its own earlier frames and
        every other session keep decoding normally."""
        utts = small_task.utterances
        server = StreamingServer(small_task.graph, config)
        sids = {i: server.open_session() for i in range(len(utts))}
        offender = sids[0]
        width = utts[0].scores.matrix.shape[1]
        server.push(offender, utts[0].scores.matrix[:4])
        server.step()
        with pytest.raises(DecodeError, match="wide like"):
            server.push(offender, np.full((2, width + 5), -1.0))
        # The offender continues with correctly shaped frames, so the
        # fleet (offender included) still matches one-shot decoding.
        self._serve_out(server, sids, utts, oneshot, offsets={0: 4})
