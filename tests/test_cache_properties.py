"""Property-based tests for the cache model against a reference LRU."""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.accel import Cache, MemoryController, Region
from repro.accel.config import CacheConfig


class ReferenceLru:
    """An independent, dead-simple LRU model (line-granular)."""

    def __init__(self, num_sets: int, assoc: int, line: int) -> None:
        self.num_sets = num_sets
        self.assoc = assoc
        self.line = line
        self.sets = [OrderedDict() for _ in range(num_sets)]

    def access(self, addr: int) -> bool:
        line_id = addr // self.line
        ways = self.sets[line_id % self.num_sets]
        if line_id in ways:
            ways.move_to_end(line_id)
            return True
        if len(ways) >= self.assoc:
            ways.popitem(last=False)
        ways[line_id] = True
        return False


addresses = st.lists(
    st.integers(0, 4095).map(lambda x: x * 16), min_size=1, max_size=300
)


@settings(max_examples=60, deadline=None)
@given(addresses)
def test_hit_miss_sequence_matches_reference(addrs):
    config = CacheConfig(size_bytes=2048, assoc=2)  # 16 sets
    cache = Cache(config, MemoryController(), Region.ARCS)
    ref = ReferenceLru(config.num_sets, config.assoc, config.line_bytes)

    time = 0
    for addr in addrs:
        time += 1
        _done, hit = cache.access(time, addr)
        assert hit == ref.access(addr), f"divergence at address {addr:#x}"


@settings(max_examples=30, deadline=None)
@given(addresses)
def test_miss_count_invariant_under_timing(addrs):
    """Hits and misses depend only on the address stream, not on timing."""
    config = CacheConfig(size_bytes=1024, assoc=4)

    def run(time_step):
        cache = Cache(config, MemoryController(), Region.ARCS)
        time = 0
        for addr in addrs:
            time += time_step
            cache.access(time, addr)
        return cache.stats.misses

    assert run(1) == run(100)


@settings(max_examples=30, deadline=None)
@given(addresses)
def test_fully_associative_upper_bounds_hits(addrs):
    """More associativity (same capacity) can reduce conflict misses for
    these short streams without pathological LRU interactions."""
    direct = CacheConfig(size_bytes=1024, assoc=1)
    cache = Cache(direct, MemoryController(), Region.ARCS)
    time = 0
    for addr in addrs:
        time += 1
        cache.access(time, addr)
    # Sanity rather than theory (Belady anomalies exist for LRU only
    # across capacities, not associativity at fixed capacity with LRU
    # stack property): the model never produces more misses than accesses
    # nor fewer than distinct lines.
    distinct_lines = len({a // 64 for a in addrs})
    assert distinct_lines <= cache.stats.misses <= len(addrs)


@settings(max_examples=30, deadline=None)
@given(addresses, st.integers(1, 3))
def test_lru_stack_property(addrs, shift):
    """Doubling associativity at fixed set count never adds misses (LRU
    inclusion property per set)."""
    small = CacheConfig(size_bytes=1024, assoc=2)       # 8 sets
    big = CacheConfig(size_bytes=2048, assoc=4)         # 8 sets, deeper ways

    def misses(config):
        cache = Cache(config, MemoryController(), Region.ARCS)
        for t, addr in enumerate(addrs):
            cache.access(t, addr)
        return cache.stats.misses

    assert misses(big) <= misses(small)
