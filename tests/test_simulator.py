"""Tests for the cycle-accurate accelerator simulator.

The central invariant: every accelerator configuration decodes to exactly
the same best path as the software reference decoder.
"""

import pytest

from repro.common.errors import ConfigError, DecodeError
from repro.accel import AcceleratorConfig, AcceleratorSimulator
from repro.decoder import BeamSearchConfig, ViterbiDecoder


@pytest.fixture(scope="module")
def configs(small_sorted_graph):
    base = AcceleratorConfig()
    return {
        "ASIC": base,
        "ASIC+State": base.with_state_direct(),
        "ASIC+Arc": base.with_prefetch(),
        "ASIC+State&Arc": base.with_both(),
    }


class TestFunctionalEquivalence:
    @pytest.mark.parametrize(
        "name", ["ASIC", "ASIC+State", "ASIC+Arc", "ASIC+State&Arc"]
    )
    def test_words_match_reference(
        self, small_task, small_sorted_graph, configs, name
    ):
        config = configs[name]
        ref = ViterbiDecoder(small_task.graph, BeamSearchConfig(beam=14.0))
        sim = AcceleratorSimulator(
            small_task.graph,
            config,
            beam=14.0,
            sorted_graph=(
                small_sorted_graph if config.state_direct_enabled else None
            ),
        )
        for utt in small_task.utterances:
            r = ref.decode(utt.scores)
            a = sim.decode(utt.scores)
            assert a.words == r.words
            assert a.log_likelihood == pytest.approx(r.log_likelihood)
            assert a.reached_final == r.reached_final

    def test_max_active_matches_reference(self, small_task):
        ref = ViterbiDecoder(
            small_task.graph, BeamSearchConfig(beam=14.0, max_active=25)
        )
        sim = AcceleratorSimulator(
            small_task.graph, AcceleratorConfig(), beam=14.0, max_active=25
        )
        for utt in small_task.utterances:
            assert (
                sim.decode(utt.scores).log_likelihood
                == pytest.approx(ref.decode(utt.scores).log_likelihood)
            )

    def test_search_counters_match_reference(self, small_task):
        ref = ViterbiDecoder(small_task.graph, BeamSearchConfig(beam=14.0))
        sim = AcceleratorSimulator(small_task.graph, beam=14.0)
        utt = small_task.utterances[0]
        r = ref.decode(utt.scores)
        a = sim.decode(utt.scores)
        assert a.search.arcs_processed == r.stats.arcs_processed
        assert a.search.states_expanded == r.stats.states_expanded
        assert a.search.tokens_created == r.stats.tokens_created


class TestTiming:
    def test_cycles_positive_and_frames_accounted(self, small_task):
        sim = AcceleratorSimulator(small_task.graph, beam=14.0)
        result = sim.decode(small_task.utterances[0].scores)
        assert result.stats.cycles > 0
        assert result.stats.frames == small_task.utterances[0].num_frames
        assert len(result.stats.frame_cycles) == result.stats.frames

    def test_cycles_at_least_one_per_arc(self, small_task):
        """The pipeline processes at most one arc per cycle."""
        sim = AcceleratorSimulator(small_task.graph, beam=14.0)
        result = sim.decode(small_task.utterances[0].scores)
        total_arcs = (
            result.stats.arcs_processed + result.stats.epsilon_arcs_processed
        )
        assert result.stats.cycles >= total_arcs

    def test_perfect_caches_never_slower(self, small_task):
        from dataclasses import replace

        base = AcceleratorConfig()
        perfect = replace(
            base,
            state_cache=replace(base.state_cache, perfect=True),
            arc_cache=replace(base.arc_cache, perfect=True),
            token_cache=replace(base.token_cache, perfect=True),
        )
        scores = small_task.utterances[0].scores
        real = AcceleratorSimulator(small_task.graph, base, beam=14.0)
        ideal = AcceleratorSimulator(small_task.graph, perfect, beam=14.0)
        assert ideal.decode(scores).stats.cycles <= real.decode(scores).stats.cycles

    def test_decode_seconds(self, small_task):
        sim = AcceleratorSimulator(small_task.graph, beam=14.0)
        result = sim.decode(small_task.utterances[0].scores)
        assert result.decode_seconds(600e6) == pytest.approx(
            result.stats.cycles / 600e6
        )


class TestMemoryBehaviour:
    def test_traffic_regions_present(self, small_task):
        sim = AcceleratorSimulator(small_task.graph, beam=14.0)
        result = sim.decode(small_task.utterances[0].scores)
        breakdown = result.stats.traffic.breakdown()
        assert breakdown.get("arcs", 0) > 0
        assert breakdown.get("states", 0) > 0
        assert breakdown.get("tokens", 0) > 0

    def test_state_direct_removes_state_traffic(
        self, small_task, small_sorted_graph
    ):
        """Section IV-B: most state fetches disappear."""
        scores = small_task.utterances[0].scores
        base = AcceleratorSimulator(small_task.graph, beam=14.0)
        direct = AcceleratorSimulator(
            small_task.graph,
            AcceleratorConfig().with_state_direct(),
            beam=14.0,
            sorted_graph=small_sorted_graph,
        )
        t_base = base.decode(scores).stats.traffic
        t_direct = direct.decode(scores).stats.traffic
        assert t_direct.region_bytes("states") < 0.25 * t_base.region_bytes(
            "states"
        )

    def test_state_direct_counts_direct_lookups(
        self, small_task, small_sorted_graph
    ):
        sim = AcceleratorSimulator(
            small_task.graph,
            AcceleratorConfig().with_state_direct(),
            beam=14.0,
            sorted_graph=small_sorted_graph,
        )
        result = sim.decode(small_task.utterances[0].scores)
        assert result.stats.states_direct > 0
        assert result.stats.states_direct > result.stats.states_fetched

    def test_prefetch_does_not_change_traffic(self, small_task):
        """Computed-address prefetching generates no useless fetches, so
        DRAM traffic is identical to the baseline (Section VI)."""
        scores = small_task.utterances[0].scores
        base = AcceleratorSimulator(small_task.graph, beam=14.0)
        pref = AcceleratorSimulator(
            small_task.graph, AcceleratorConfig().with_prefetch(), beam=14.0
        )
        assert (
            base.decode(scores).stats.traffic.total_bytes()
            == pref.decode(scores).stats.traffic.total_bytes()
        )


class TestErrors:
    def test_state_direct_without_sorted_graph_rejected(self, small_graph):
        with pytest.raises(ConfigError):
            AcceleratorSimulator(
                small_graph, AcceleratorConfig().with_state_direct(), beam=10.0
            )

    def test_empty_scores_rejected(self, small_graph):
        import numpy as np

        from repro.acoustic.scorer import AcousticScores

        sim = AcceleratorSimulator(small_graph, beam=10.0)
        with pytest.raises(DecodeError):
            sim.decode(AcousticScores(np.zeros((0, 4))))

    def test_invalid_beam_rejected(self, small_graph):
        with pytest.raises(ConfigError):
            AcceleratorSimulator(small_graph, beam=-1.0)

    def test_acoustic_buffer_capacity_enforced(self, small_task):
        """Both double-buffered frames of scores must fit on chip."""
        from dataclasses import replace

        tiny = replace(AcceleratorConfig(), acoustic_buffer_bytes=64)
        sim = AcceleratorSimulator(small_task.graph, tiny, beam=14.0)
        with pytest.raises(ConfigError):
            sim.decode(small_task.utterances[0].scores)

    def test_acoustic_buffer_fits_paper_senone_count(self):
        """Table I's 64 KB buffer holds two frames of 3.5k senone scores
        with room to spare -- the paper's own operating point."""
        config = AcceleratorConfig()
        assert 2 * 3500 * 4 <= config.acoustic_buffer_bytes
