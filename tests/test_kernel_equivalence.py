"""Cross-engine equivalence over the shared frame-recurrence kernel.

Every decode engine -- scalar reference, vectorized batch, chunked
streaming sessions, the lattice decoder, the GPU workload model and the
accelerator trace recorder -- runs on :mod:`repro.decoder.kernel`.  This
suite asserts the kernel contract over randomized
:class:`~repro.datasets.SyntheticGraphConfig` workloads and all three
pruning strategies (fixed beam, beam + histogram cap, adaptive beam):
word-identical output everywhere, and identical order-independent
functional counters (``tokens_pruned``, ``arcs_processed``,
``states_expanded``, ``tokens_created``, ``active_tokens_per_frame``).
"""

import pytest

from repro.accel import TraceRecorder
from repro.common.errors import ConfigError
from repro.datasets import SyntheticGraphConfig
from repro.decoder import (
    AdaptiveBeamPruning,
    BatchDecoder,
    DecoderConfig,
    LatticeDecoder,
    ViterbiDecoder,
)
from repro.gpu import GpuViterbiDecoder
from repro.system import make_memory_workload

#: The three pruning strategies of the kernel's strategy layer.
CONFIGS = {
    "beam": DecoderConfig(beam=6.0),
    "histogram": DecoderConfig(beam=8.0, max_active=60),
    "adaptive": DecoderConfig(
        beam=5.0, pruning="adaptive", target_active=50, min_beam=2.0
    ),
}

#: Randomized workload shapes: (num_states, num_phones, frames, seed).
SHAPES = [
    (900, 30, 7, 21),
    (1500, 40, 6, 22),
    (600, 25, 9, 23),
]


def _workload(shape):
    num_states, num_phones, frames, seed = shape
    return make_memory_workload(
        num_utterances=2,
        frames_per_utterance=frames,
        beam=8.0,
        max_active=0,
        seed=seed,
        graph_config=SyntheticGraphConfig(
            num_states=num_states, num_phones=num_phones, seed=seed
        ),
    )


def _core_counters(stats):
    return (
        stats.frames,
        stats.tokens_pruned,
        stats.states_expanded,
        stats.arcs_processed,
        stats.tokens_created,
        tuple(stats.active_tokens_per_frame),
        tuple(sorted(stats.visited_state_degrees)),
    )


@pytest.mark.parametrize("shape", SHAPES, ids=lambda s: f"states{s[0]}")
@pytest.mark.parametrize("strategy", sorted(CONFIGS))
class TestAllEnginesAgree:
    def test_words_scores_and_counters(self, shape, strategy):
        workload = _workload(shape)
        graph = workload.graph
        config = CONFIGS[strategy]

        reference = ViterbiDecoder(graph, config)
        batch = BatchDecoder(graph, config)
        lattice_decoder = LatticeDecoder(graph, config, lattice_beam=10.0)
        gpu = GpuViterbiDecoder(graph, config=config)
        recorder = TraceRecorder(graph, config=config)

        batch_results = batch.decode_batch(workload.scores)
        for scores, batched in zip(workload.scores, batch_results):
            ref = reference.decode(scores)

            # Vectorized batch engine: bit-identical scores.
            assert batched.words == ref.words
            assert batched.log_likelihood == ref.log_likelihood
            assert _core_counters(batched.stats) == _core_counters(ref.stats)

            # Chunked streaming session == one-shot decode.
            session = batch.open_session()
            matrix = scores.matrix
            session.push(matrix[:2])
            session.push(matrix[2:])
            streamed = session.finalize()
            assert streamed.words == ref.words
            assert streamed.log_likelihood == ref.log_likelihood
            assert _core_counters(streamed.stats) == _core_counters(ref.stats)

            # Lattice decoder: same search through the capture observer.
            lattice = lattice_decoder.decode(scores)
            best = lattice.best_path()
            assert best.words == ref.words
            assert best.log_likelihood == pytest.approx(
                ref.log_likelihood, abs=1e-9
            )
            assert _core_counters(lattice.stats) == _core_counters(ref.stats)

            # GPU workload model: same kernel, plus work counts that
            # stay consistent with the functional counters.
            gpu_result, work = gpu.decode(scores)
            assert gpu_result.words == ref.words
            assert gpu_result.log_likelihood == ref.log_likelihood
            assert _core_counters(gpu_result.stats) == _core_counters(
                ref.stats
            )
            assert work.arcs_expanded == ref.stats.arcs_processed

            # Trace recorder: the reference kernel observed, so *every*
            # counter (order-dependent ones included) matches the oracle.
            trace = recorder.record(scores)
            assert trace.words == ref.words
            assert trace.log_likelihood == ref.log_likelihood
            assert trace.search == ref.stats
            assert trace.pruning == config.pruning


class TestAdaptiveBeam:
    def test_tracks_target_active(self):
        """A smaller target must yield a smaller mean active set."""
        workload = _workload((1500, 40, 12, 31))
        scores = workload.scores[0]

        def mean_active(target):
            config = DecoderConfig(
                beam=8.0, pruning="adaptive", target_active=target,
                min_beam=0.5, max_beam=40.0,
            )
            return ViterbiDecoder(
                workload.graph, config
            ).decode(scores).stats.mean_active_tokens

        small, big = mean_active(15), mean_active(400)
        assert small < big

    def test_widens_up_to_clamp(self):
        """With an unreachably large target the beam rides max_beam."""
        config = DecoderConfig(
            beam=4.0, pruning="adaptive", target_active=10_000,
            min_beam=1.0, max_beam=9.0, adapt_rate=1.0,
        )
        pruner = config.make_pruner()
        assert isinstance(pruner, AdaptiveBeamPruning)
        for _ in range(8):
            pruner.observe(5)
        assert pruner.current_beam == pytest.approx(9.0)
        for _ in range(8):
            pruner.observe(10_000_000)
        assert pruner.current_beam == pytest.approx(1.0)

    def test_update_is_multiplicative(self):
        config = DecoderConfig(
            beam=8.0, pruning="adaptive", target_active=100,
            min_beam=0.1, max_beam=100.0, adapt_rate=0.5,
        )
        pruner = config.make_pruner()
        pruner.observe(400)  # 4x over target -> beam *= 0.25 ** 0.5
        assert pruner.current_beam == pytest.approx(8.0 * 0.5)

    def test_threshold_uses_current_beam(self):
        config = DecoderConfig(
            beam=8.0, pruning="adaptive", target_active=100,
        )
        pruner = config.make_pruner()
        assert pruner.threshold(0.0) == pytest.approx(-8.0)
        pruner.observe(10_000)
        assert pruner.threshold(0.0) > -8.0


class TestDecoderConfigValidation:
    def test_adaptive_requires_target(self):
        with pytest.raises(ConfigError):
            DecoderConfig(pruning="adaptive")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigError):
            DecoderConfig(pruning="telepathy")

    def test_clamp_range_validated(self):
        with pytest.raises(ConfigError):
            DecoderConfig(
                pruning="adaptive", target_active=10, min_beam=20.0
            )
        with pytest.raises(ConfigError):
            DecoderConfig(
                pruning="adaptive", target_active=10, beam=8.0, max_beam=4.0
            )
        with pytest.raises(ConfigError):
            DecoderConfig(
                pruning="adaptive", target_active=10, adapt_rate=0.0
            )

    def test_max_beam_defaults_to_4x(self):
        config = DecoderConfig(
            beam=6.0, pruning="adaptive", target_active=10
        )
        assert config.resolved_max_beam == pytest.approx(24.0)
