"""Tests for area / power / energy models against the paper's figures."""

import pytest

from repro.accel import AcceleratorConfig
from repro.accel.prefetch import PrefetchHardware
from repro.accel.stats import SimStats
from repro.energy import (
    AcceleratorAreaModel,
    AcceleratorEnergyModel,
    CpuTimingModel,
    INTEL_I7_6700K,
    SramMacroModel,
)
from repro.decoder.result import SearchStats


class TestSramModel:
    def test_area_scales_linearly(self):
        m = SramMacroModel()
        one = m.area_mm2(2**20) - m.area_fixed_mm2
        two = m.area_mm2(2 * 2**20) - m.area_fixed_mm2
        assert two == pytest.approx(2 * one)

    def test_energy_scales_sqrt(self):
        m = SramMacroModel()
        assert m.access_energy_pj(4 * 64 * 1024) == pytest.approx(
            2 * m.access_energy_pj(64 * 1024)
        )

    def test_zero_size(self):
        assert SramMacroModel().access_energy_pj(0) == 0.0


class TestAreaCalibration:
    def test_base_area_near_paper(self):
        """Paper: 24.06 mm2 for the base design."""
        area = AcceleratorAreaModel().total_mm2(AcceleratorConfig())
        assert area == pytest.approx(24.06, rel=0.02)

    def test_prefetch_area_increase_tiny(self):
        """Paper: prefetching adds 0.05% to total area."""
        model = AcceleratorAreaModel()
        base = model.total_mm2(AcceleratorConfig())
        pref = model.total_mm2(AcceleratorConfig().with_prefetch())
        assert 0.0 < (pref - base) / base < 0.005

    def test_state_direct_area_increase_tiny(self):
        """Paper: the State Issuer hardware adds 0.02%."""
        model = AcceleratorAreaModel()
        base = model.total_mm2(AcceleratorConfig())
        direct = model.total_mm2(AcceleratorConfig().with_state_direct())
        assert 0.0 < (direct - base) / base < 0.001

    def test_both_near_2409(self):
        """Paper: 24.09 mm2 with both techniques."""
        area = AcceleratorAreaModel().total_mm2(AcceleratorConfig().with_both())
        assert area == pytest.approx(24.09, rel=0.02)

    def test_area_16x_smaller_than_gtx980(self):
        """Paper: 16.53x reduction vs the 398 mm2 GTX 980 die."""
        from repro.gpu import GTX980

        area = AcceleratorAreaModel().total_mm2(AcceleratorConfig())
        assert GTX980.die_area_mm2 / area == pytest.approx(16.5, rel=0.05)


class TestPrefetchHardware:
    def test_storage_is_kilobytes(self):
        hw = PrefetchHardware()
        assert hw.total_bytes < 8 * 1024  # negligible vs 3.7 MB of SRAM
        assert hw.request_fifo_bytes == 64 * 4
        assert hw.reorder_buffer_bytes == 64 * 64


class TestPowerModel:
    def _stats(self, cycles=600_000):
        stats = SimStats(cycles=cycles, frames=100)
        stats.arc_cache.accesses = 200_000
        stats.state_cache.accesses = 80_000
        stats.token_cache.accesses = 100_000
        stats.hash.total_cycles = 250_000
        stats.acoustic_lookups = 200_000
        stats.fp_adds = 400_000
        stats.fp_compares = 400_000
        stats.traffic.add("arcs", 2_000_000, write=False)
        return stats

    def test_static_power_dominates(self):
        model = AcceleratorEnergyModel()
        config = AcceleratorConfig()
        breakdown = model.energy(config, self._stats())
        assert breakdown.static_j > 0.3 * breakdown.total_j

    def test_average_power_in_paper_range(self):
        """Paper: 389 mW to 462 mW across configurations."""
        model = AcceleratorEnergyModel()
        power = model.avg_power_w(AcceleratorConfig(), self._stats())
        assert 0.25 < power < 0.75

    def test_prefetch_power_adder_matches_paper(self):
        """Paper: FIFOs + ROB dissipate 4.83 mW."""
        model = AcceleratorEnergyModel()
        base = model.static_power_w(AcceleratorConfig())
        pref = model.static_power_w(AcceleratorConfig().with_prefetch())
        assert pref - base == pytest.approx(4.83e-3, rel=0.05)

    def test_state_direct_power_adder_matches_paper(self):
        """Paper: comparators + offset table dissipate 0.15 mW."""
        model = AcceleratorEnergyModel()
        base = model.static_power_w(AcceleratorConfig())
        direct = model.static_power_w(AcceleratorConfig().with_state_direct())
        assert direct - base == pytest.approx(0.15e-3, rel=0.05)

    def test_energy_zero_time(self):
        model = AcceleratorEnergyModel()
        assert model.avg_power_w(AcceleratorConfig(), SimStats()) == 0.0


class TestCpuModel:
    def test_table2_spec(self):
        assert INTEL_I7_6700K.num_cores == 4
        assert INTEL_I7_6700K.frequency_hz == pytest.approx(4.2e9)
        assert INTEL_I7_6700K.technology_nm == 14
        assert INTEL_I7_6700K.avg_power_w == pytest.approx(32.2)

    def test_search_time_linear_in_arcs(self):
        model = CpuTimingModel()
        small = SearchStats(arcs_processed=1000)
        big = SearchStats(arcs_processed=100_000)
        assert model.search_seconds(big) > 50 * model.search_seconds(small)

    def test_energy_is_power_times_time(self):
        model = CpuTimingModel()
        stats = SearchStats(arcs_processed=50_000, frames=10)
        assert model.search_energy_j(stats) == pytest.approx(
            model.search_seconds(stats) * 32.2
        )

    def test_dnn_negative_flops_rejected(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            CpuTimingModel().dnn_seconds(-1.0)
