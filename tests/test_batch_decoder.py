"""Tests for the vectorized batch decoding engine.

The contract under test: :class:`BatchDecoder` produces the same word
sequences as :class:`ViterbiDecoder` -- across beams, ``max_active``
caps, epsilon-heavy graphs and ragged multi-utterance batches -- with
bit-identical path likelihoods (the vectorized arithmetic associates
per-path additions in the same order as the scalar decoder).
"""

import math

import numpy as np
import pytest

from repro.common.errors import DecodeError
from repro.acoustic.scorer import AcousticScores
from repro.decoder import BatchDecoder, BeamSearchConfig, ViterbiDecoder
from repro.wfst import CompiledWfst, EPSILON, Fst

L, OW, EH, S = 1, 2, 3, 4
LOW, LESS, MORE = 1, 2, 3


def assert_equivalent(graph, config, scores_list):
    """Both engines agree on every utterance; returns both result lists."""
    reference = ViterbiDecoder(graph, config)
    batch = BatchDecoder(graph, config)
    ref_results = [reference.decode(s) for s in scores_list]
    batch_results = batch.decode_batch(scores_list)
    for ref, got in zip(ref_results, batch_results):
        assert got.words == ref.words
        assert got.log_likelihood == pytest.approx(
            ref.log_likelihood, abs=1e-12
        )
        assert got.reached_final == ref.reached_final
    return ref_results, batch_results


def scores_for(rows, num_phones=4):
    matrix = np.full((len(rows), num_phones + 1), -1e9)
    for f, row in enumerate(rows):
        for phone, prob in row.items():
            matrix[f, phone] = math.log(prob)
    return AcousticScores(matrix)


def epsilon_heavy_graph():
    """Competing epsilon paths, chains and word-emitting epsilons.

    ``s1`` reaches ``s3`` through two epsilon routes of different length
    and weight (the merge must pick the likelier one) and the longer route
    emits a word on an epsilon arc; a depth-3 epsilon chain then leads to
    the final state.
    """
    fst = Fst()
    s0, s1, s2, s3, s4, s5, s6, s7 = fst.add_states(8)
    fst.set_start(s0)
    fst.add_arc(s0, L, LOW, 0.0, s1)
    # Route A: one hop, cheap.
    fst.add_arc(s1, EPSILON, EPSILON, math.log(0.3), s3)
    # Route B: two hops through s2, jointly likelier, emits MORE.
    fst.add_arc(s1, EPSILON, MORE, math.log(0.8), s2)
    fst.add_arc(s2, EPSILON, EPSILON, math.log(0.9), s3)
    fst.add_arc(s3, OW, LESS, 0.0, s4)
    # Depth-3 epsilon chain to the final state.
    fst.add_arc(s4, EPSILON, EPSILON, math.log(0.9), s5)
    fst.add_arc(s5, EPSILON, EPSILON, math.log(0.9), s6)
    fst.add_arc(s6, EPSILON, EPSILON, math.log(0.9), s7)
    fst.set_final(s7, 0.0)
    return CompiledWfst.from_fst(fst)


class TestHandBuiltGraphs:
    def test_epsilon_merge_picks_likelier_route(self):
        graph = epsilon_heavy_graph()
        scores = scores_for([{L: 0.9}, {OW: 0.9}])
        result = BatchDecoder(graph, BeamSearchConfig(beam=30.0)).decode(scores)
        # Route B (0.8 * 0.9 = 0.72) beats route A (0.3) and emits MORE.
        assert result.words == (LOW, MORE, LESS)
        assert result.log_likelihood == pytest.approx(
            math.log(0.9 * 0.8 * 0.9 * 0.9 * 0.9 * 0.9 * 0.9)
        )
        assert result.reached_final

    def test_epsilon_heavy_equivalence(self):
        graph = epsilon_heavy_graph()
        scores = scores_for([{L: 0.9, OW: 0.2}, {OW: 0.7, L: 0.1}])
        assert_equivalent(graph, BeamSearchConfig(beam=30.0), [scores])

    def test_multiple_arcs_one_destination(self):
        """The segment-max merge keeps the best incoming arc."""
        fst = Fst()
        s0, s1, s2 = fst.add_states(3)
        fst.set_start(s0)
        fst.add_arc(s0, L, LOW, math.log(0.9), s1)
        fst.add_arc(s0, L, LESS, math.log(0.1), s1)
        fst.add_arc(s1, OW, EPSILON, 0.0, s2)
        fst.set_final(s2)
        graph = CompiledWfst.from_fst(fst)
        scores = scores_for([{L: 0.5}, {OW: 0.5}])
        result = BatchDecoder(graph, BeamSearchConfig(beam=30.0)).decode(scores)
        assert result.words == (LOW,)

    def test_no_final_token_fallback(self):
        """Dead-end graphs fall back to the best live token, like scalar."""
        fst = Fst()
        s0, s1, s2 = fst.add_states(3)
        fst.set_start(s0)
        fst.add_arc(s0, L, LOW, 0.0, s1)
        fst.add_arc(s1, OW, LESS, 0.0, s2)
        fst.set_final(s2)
        graph = CompiledWfst.from_fst(fst)
        # One frame only: the final state is unreachable.
        scores = scores_for([{L: 0.8}])
        assert_equivalent(graph, BeamSearchConfig(beam=30.0), [scores])
        result = BatchDecoder(graph, BeamSearchConfig(beam=30.0)).decode(scores)
        assert not result.reached_final

    def test_multi_round_epsilon_improvement(self):
        """An improvement must propagate through several closure rounds.

        The direct epsilon arc from ``s1`` to each chain state is beaten by
        the chain route discovered on a later round, so the closure's
        "improved last round" frontier must be re-relaxed repeatedly; both
        engines agree round for round.
        """
        cheap, step = math.log(0.1), math.log(0.95)
        fst = Fst()
        s0, s1, c1, c2, c3, s5 = fst.add_states(6)
        fst.set_start(s0)
        fst.add_arc(s0, L, LOW, 0.0, s1)
        # Direct (weak) epsilon shortcuts to every chain state...
        fst.add_arc(s1, EPSILON, EPSILON, 3 * cheap, c3)
        fst.add_arc(s1, EPSILON, EPSILON, 2 * cheap, c2)
        fst.add_arc(s1, EPSILON, EPSILON, cheap, c1)
        # ...all beaten by the chain, one extra round at a time.
        fst.add_arc(c1, EPSILON, MORE, step, c2)
        fst.add_arc(c2, EPSILON, EPSILON, step, c3)
        fst.add_arc(c3, OW, LESS, 0.0, s5)
        fst.set_final(s5, 0.0)
        graph = CompiledWfst.from_fst(fst)
        scores = scores_for([{L: 0.9}, {OW: 0.9}])
        config = BeamSearchConfig(beam=50.0)
        assert_equivalent(graph, config, [scores])
        result = BatchDecoder(graph, config).decode(scores)
        # The winning path runs through the whole chain (emitting MORE).
        assert result.words == (LOW, MORE, LESS)
        assert result.log_likelihood == pytest.approx(
            math.log(0.9) + cheap + 2 * step + math.log(0.9)
        )

    def test_frontier_empties_on_epsilon_only_survivors(self):
        """Survivors with only epsilon arcs empty the next frontier (the
        empty-gather path); both engines then fail the same way."""
        fst = Fst()
        s0, s1, s2 = fst.add_states(3)
        fst.set_start(s0)
        fst.add_arc(s0, L, LOW, 0.0, s1)
        fst.add_arc(s1, EPSILON, EPSILON, math.log(0.9), s2)
        fst.set_final(s2, 0.0)
        graph = CompiledWfst.from_fst(fst)
        # Frame 1 finds only epsilon arcs out of {s1, s2}: no token can
        # consume it.
        scores = scores_for([{L: 0.8}, {L: 0.8}])
        config = BeamSearchConfig(beam=30.0)
        with pytest.raises(DecodeError):
            ViterbiDecoder(graph, config).decode(scores)
        with pytest.raises(DecodeError):
            BatchDecoder(graph, config).decode(scores)
        # One frame decodes fine (and reaches the final state via epsilon).
        one = scores_for([{L: 0.8}])
        assert_equivalent(graph, config, [one])
        # A streaming session hits the same wall mid-stream: the frame
        # that finds only epsilon arcs empties the frontier silently, and
        # the next push raises.
        session = BatchDecoder(graph, config).open_session()
        session.push_frame(one.matrix[0])
        assert session.alive
        session.push_frame(one.matrix[0])
        assert not session.alive
        with pytest.raises(DecodeError):
            session.push_frame(one.matrix[0])

    def test_mixed_epsilon_only_and_productive_survivors(self):
        """A frontier mixing zero-non-epsilon states with productive ones
        exercises the partially-empty gather; engines stay equivalent."""
        fst = Fst()
        s0, s1, s2, s3 = fst.add_states(4)
        fst.set_start(s0)
        fst.add_arc(s0, L, LOW, math.log(0.5), s1)   # s1: only eps out
        fst.add_arc(s0, L, LESS, math.log(0.5), s3)  # s3: productive
        fst.add_arc(s1, EPSILON, EPSILON, math.log(0.9), s2)
        fst.add_arc(s3, OW, MORE, 0.0, s2)
        fst.set_final(s2, 0.0)
        graph = CompiledWfst.from_fst(fst)
        scores = scores_for([{L: 0.8}, {OW: 0.8}])
        assert_equivalent(graph, BeamSearchConfig(beam=30.0), [scores])


class TestTaskEquivalence:
    @pytest.mark.parametrize("beam", [4.0, 8.0, 14.0, 20.0])
    def test_beam_sweep(self, small_task, beam):
        assert_equivalent(
            small_task.graph,
            BeamSearchConfig(beam=beam),
            [u.scores for u in small_task.utterances],
        )

    @pytest.mark.parametrize("max_active", [10, 25, 100])
    def test_max_active_sweep(self, small_task, max_active):
        assert_equivalent(
            small_task.graph,
            BeamSearchConfig(beam=14.0, max_active=max_active),
            [u.scores for u in small_task.utterances],
        )

    def test_epsilon_rich_task(self):
        """High silence probability densifies the epsilon subgraph."""
        from repro.datasets import TaskConfig, generate_task

        task = generate_task(
            TaskConfig(vocab_size=40, corpus_sentences=200,
                       num_utterances=3, silence_prob=0.6, seed=19)
        )
        assert task.graph.epsilon_fraction() > 0.05
        assert_equivalent(
            task.graph,
            BeamSearchConfig(beam=12.0),
            [u.scores for u in task.utterances],
        )

    def test_core_counters_match_reference(self, small_task):
        """Same frontier per frame => same pruning/expansion counters."""
        config = BeamSearchConfig(beam=12.0, max_active=50)
        ref_results, batch_results = assert_equivalent(
            small_task.graph,
            config,
            [u.scores for u in small_task.utterances],
        )
        for ref, got in zip(ref_results, batch_results):
            assert got.stats.frames == ref.stats.frames
            assert (
                got.stats.active_tokens_per_frame
                == ref.stats.active_tokens_per_frame
            )
            assert got.stats.states_expanded == ref.stats.states_expanded
            assert got.stats.arcs_processed == ref.stats.arcs_processed
            assert got.stats.tokens_pruned == ref.stats.tokens_pruned
            assert sorted(got.stats.visited_state_degrees) == sorted(
                ref.stats.visited_state_degrees
            )


class TestRaggedBatches:
    def test_ragged_batch_matches_singles(self, small_task):
        """Mixed-length batch == decoding each utterance alone."""
        base = small_task.utterances[0].scores
        ragged = [
            AcousticScores(base.matrix[:k])
            for k in (3, base.num_frames, 7, 1)
        ] + [u.scores for u in small_task.utterances]
        decoder = BatchDecoder(small_task.graph, BeamSearchConfig(beam=14.0))
        together = decoder.decode_batch(ragged)
        alone = [decoder.decode(s) for s in ragged]
        for one, many in zip(alone, together):
            assert many.words == one.words
            assert many.log_likelihood == one.log_likelihood
        assert_equivalent(
            small_task.graph, BeamSearchConfig(beam=14.0), ragged
        )

    def test_empty_batch(self, small_graph):
        assert BatchDecoder(small_graph).decode_batch([]) == []

    def test_empty_scores_rejected(self, small_graph):
        decoder = BatchDecoder(small_graph)
        with pytest.raises(DecodeError):
            decoder.decode(AcousticScores(np.zeros((0, 5))))
        with pytest.raises(DecodeError):
            decoder.decode_batch(
                [AcousticScores(np.full((2, 5), -1.0)),
                 AcousticScores(np.zeros((0, 5)))]
            )

    def test_decoder_reusable_across_batches(self, small_task):
        """One decoder instance serves many decode_batch calls."""
        decoder = BatchDecoder(small_task.graph, BeamSearchConfig(beam=14.0))
        scores = [u.scores for u in small_task.utterances]
        first = decoder.decode_batch(scores)
        second = decoder.decode_batch(scores)
        for a, b in zip(first, second):
            assert a.words == b.words
            assert a.log_likelihood == b.log_likelihood
