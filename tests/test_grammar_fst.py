"""Tests for the grammar (G) transducer."""

import pytest

from repro.lm import build_grammar_fst, train_ngram
from repro.wfst.ops import check_epsilon_acyclic


@pytest.fixture(scope="module")
def model():
    corpus = [[1, 2, 3], [1, 2], [2, 3]] * 4
    return train_ngram(corpus, vocab_size=3)


@pytest.fixture(scope="module")
def grammar(model):
    return build_grammar_fst(model)


def test_acceptor_labels_match(grammar):
    for s in grammar.states():
        for arc in grammar.arcs(s):
            assert arc.ilabel == arc.olabel


def test_backoff_arcs_are_epsilon(grammar):
    eps_arcs = [
        a for s in grammar.states() for a in grammar.arcs(s) if a.is_epsilon
    ]
    assert eps_arcs, "grammar must contain backoff epsilon arcs"
    # All epsilon arcs point at the single backoff state.
    dests = {a.dest for a in eps_arcs}
    assert len(dests) == 1


def test_epsilon_acyclic(grammar):
    check_epsilon_acyclic(grammar)


def test_observed_bigram_weight_matches_model(grammar, model):
    # Find history state of word 1 by walking arc labeled 1 from start.
    start_arcs = {a.ilabel: a for a in grammar.arcs(grammar.start)}
    h1 = start_arcs[1].dest
    arcs1 = {a.ilabel: a for a in grammar.arcs(h1) if not a.is_epsilon}
    assert arcs1[2].weight == pytest.approx(model.bigram_logprob[(1, 2)])


def test_every_word_reachable_from_backoff(grammar, model):
    eps = next(
        a for s in grammar.states() for a in grammar.arcs(s) if a.is_epsilon
    )
    backoff = eps.dest
    labels = {a.ilabel for a in grammar.arcs(backoff)}
    assert labels == set(range(1, model.vocab_size + 1))


def test_final_states_exist(grammar):
    assert any(grammar.is_final(s) for s in grammar.states())
