"""Tests for the lexicon transducer construction."""

import pytest

from repro.common.errors import ConfigError
from repro.lexicon import build_lexicon_fst, generate_lexicon
from repro.wfst import EPSILON
from repro.wfst.ops import check_epsilon_acyclic


@pytest.fixture(scope="module")
def lexicon():
    return generate_lexicon(20, seed=1)


def walk_word(fst, lexicon, word_id):
    """Follow the pronunciation of a word through L; return emitted words."""
    pron = lexicon.pronunciation(word_id)
    state = fst.start
    emitted = []
    for phone in pron:
        # Take the non-self-loop arc consuming this phone that leaves the
        # current state toward an unvisited state.
        candidates = [
            a for a in fst.arcs(state) if a.ilabel == phone and a.dest != state
        ]
        assert candidates, f"no arc for phone {phone} from state {state}"
        # Words share a root: pick the arc that eventually matches; for the
        # unique-pronunciation lexicon the first is correct except at the
        # root, where the olabel disambiguates.
        arc = next(
            (a for a in candidates if a.olabel == word_id), candidates[0]
        )
        if arc.olabel != EPSILON:
            emitted.append(arc.olabel)
        state = arc.dest
    return emitted, state


class TestStructure:
    def test_root_is_start_and_final(self, lexicon):
        fst = build_lexicon_fst(lexicon)
        assert fst.is_final(fst.start)

    def test_every_word_spells_out(self, lexicon):
        fst = build_lexicon_fst(lexicon)
        for wid in lexicon.word_ids():
            emitted, state = walk_word(fst, lexicon, wid)
            assert emitted == [wid]
            # Last phone state returns to root via epsilon.
            eps_arcs = [a for a in fst.arcs(state) if a.is_epsilon]
            assert any(a.dest == fst.start for a in eps_arcs)

    def test_word_emitted_on_first_arc(self, lexicon):
        fst = build_lexicon_fst(lexicon)
        root_olabels = {
            a.olabel for a in fst.arcs(fst.start) if a.olabel != EPSILON
        }
        assert root_olabels == set(lexicon.word_ids())

    def test_self_loops_present(self, lexicon):
        fst = build_lexicon_fst(lexicon, self_loop_prob=0.7)
        wid = 1
        pron = lexicon.pronunciation(wid)
        _emitted, state = walk_word(fst, lexicon, wid)
        loops = [a for a in fst.arcs(state) if a.dest == state]
        assert len(loops) == 1
        assert loops[0].ilabel == pron[-1]

    def test_self_loops_disabled(self, lexicon):
        fst = build_lexicon_fst(lexicon, self_loop_prob=0.0)
        for s in fst.states():
            assert all(a.dest != s for a in fst.arcs(s))

    def test_silence_loop(self, lexicon):
        fst = build_lexicon_fst(lexicon, silence_prob=0.3)
        sil = lexicon.phones.silence_id
        sil_arcs = [a for a in fst.arcs(fst.start) if a.ilabel == sil]
        assert len(sil_arcs) == 1

    def test_silence_disabled(self, lexicon):
        fst = build_lexicon_fst(lexicon, silence_prob=0.0)
        sil = lexicon.phones.silence_id
        assert all(a.ilabel != sil for a in fst.arcs(fst.start))

    def test_epsilon_acyclic(self, lexicon):
        fst = build_lexicon_fst(lexicon)
        check_epsilon_acyclic(fst)  # should not raise

    def test_invalid_probs_rejected(self, lexicon):
        with pytest.raises(ConfigError):
            build_lexicon_fst(lexicon, silence_prob=1.0)
        with pytest.raises(ConfigError):
            build_lexicon_fst(lexicon, self_loop_prob=-0.1)
