"""Tests for the audio synthesiser and MFCC pipeline."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.frontend import (
    AudioSynthesizer,
    MfccConfig,
    MfccExtractor,
    PhoneAlignment,
    hz_to_mel,
    mel_to_hz,
)
from repro.lexicon import PhoneSet


@pytest.fixture(scope="module")
def phone_set():
    return PhoneSet()


@pytest.fixture(scope="module")
def synth(phone_set):
    return AudioSynthesizer(phone_set, seed=1)


class TestMelScale:
    def test_zero_hz_is_zero_mel(self):
        assert hz_to_mel(0.0) == 0.0

    def test_round_trip(self):
        freqs = np.array([100.0, 440.0, 1000.0, 4000.0])
        assert np.allclose(mel_to_hz(hz_to_mel(freqs)), freqs)

    def test_monotonic(self):
        freqs = np.linspace(1, 8000, 100)
        mels = hz_to_mel(freqs)
        assert (np.diff(mels) > 0).all()


class TestAlignment:
    def test_total_frames(self):
        a = PhoneAlignment((1, 2, 3), (4, 5, 6))
        assert a.total_frames == 15

    def test_frame_labels_expand(self):
        a = PhoneAlignment((7, 9), (2, 3))
        assert a.frame_labels().tolist() == [7, 7, 9, 9, 9]


class TestSynthesizer:
    def test_waveform_length_matches_alignment(self, synth):
        wave, align = synth.synthesize([1, 5, 9], seed=3)
        assert len(wave) == align.total_frames * synth.hop_samples

    def test_normalised(self, synth):
        wave, _ = synth.synthesize([1, 2, 3, 4], seed=4)
        assert np.abs(wave).max() <= 1.0

    def test_deterministic(self, synth):
        a, _ = synth.synthesize([1, 2], seed=5)
        b, _ = synth.synthesize([1, 2], seed=5)
        assert np.array_equal(a, b)

    def test_different_phones_differ_spectrally(self, synth, phone_set):
        wave_a, _ = synth.synthesize([1] * 4, seed=6)
        wave_b, _ = synth.synthesize([10] * 4, seed=6)
        spec_a = np.abs(np.fft.rfft(wave_a))
        spec_b = np.abs(np.fft.rfft(wave_b))
        corr = np.corrcoef(spec_a, spec_b)[0, 1]
        assert corr < 0.9

    def test_empty_sequence_rejected(self, synth):
        with pytest.raises(ConfigError):
            synth.synthesize([], seed=0)


class TestMfcc:
    def test_output_shape(self, synth):
        wave, align = synth.synthesize([1, 2, 3], seed=7)
        cfg = MfccConfig()
        feats = MfccExtractor(cfg).extract(wave)
        assert feats.shape[1] == cfg.feature_dim
        # One feature frame per 10 ms hop (within window-edge truncation).
        assert abs(feats.shape[0] - align.total_frames) <= 3

    def test_feature_dim_arithmetic(self):
        cfg = MfccConfig(num_ceps=13, include_energy=True, include_deltas=True)
        assert cfg.feature_dim == (13 + 1) * 3
        cfg2 = MfccConfig(include_energy=False, include_deltas=False)
        assert cfg2.feature_dim == 13

    def test_deterministic(self, synth):
        wave, _ = synth.synthesize([1, 2], seed=8)
        ex = MfccExtractor()
        assert np.array_equal(ex.extract(wave), ex.extract(wave))

    def test_same_phone_frames_cluster(self, synth):
        """Frames of one phone must be closer to each other than to
        frames of a different phone -- the property the DNN relies on."""
        wave, align = synth.synthesize([1] * 3 + [20] * 3, seed=9)
        feats = MfccExtractor(MfccConfig(include_deltas=False)).extract(wave)
        labels = align.frame_labels()[: len(feats)]
        a = feats[labels == 1].mean(axis=0)
        b = feats[labels == 20].mean(axis=0)
        within = np.linalg.norm(feats[labels == 1] - a, axis=1).mean()
        between = np.linalg.norm(a - b)
        assert between > within * 0.5

    def test_filterbank_covers_all_filters(self):
        ex = MfccExtractor()
        assert (ex._filterbank.sum(axis=1) > 0).all()

    def test_dct_rows_orthogonal(self):
        ex = MfccExtractor()
        d = ex._dct
        gram = d @ d.T
        off_diag = gram - np.diag(np.diag(gram))
        assert np.abs(off_diag).max() < 1e-9

    def test_too_short_waveform_rejected(self):
        with pytest.raises(ConfigError):
            MfccExtractor().extract(np.zeros(10))

    def test_nyquist_violation_rejected(self):
        with pytest.raises(ConfigError):
            MfccConfig(sample_rate=8000, high_freq_hz=7600.0)
