"""Tests for batched in-tier acoustic scoring: the BatchScorer packing
stage, the double-buffered shared-memory score planes, and the
features-mode front doors of StreamingServer and ServingTier.

Correctness anchor: pushing MFCC features and letting the serving layer
score them -- batched across sessions, shipped over shared memory --
produces bitwise the words and path scores of the client scoring its own
chunks and pushing likelihood rows.
"""

import asyncio

import numpy as np
import pytest

from repro.common.errors import ConfigError, DecodeError
from repro.acoustic import BatchScorer, Dnn, DnnConfig, DnnScorer
from repro.datasets import AudioTaskConfig, generate_audio_task
from repro.decoder import BeamSearchConfig
from repro.system import (
    ScorePlaneRing,
    ScorePlaneView,
    ServingTier,
    StreamingServer,
    TierConfig,
)


@pytest.fixture(scope="module")
def audio_task():
    return generate_audio_task(
        AudioTaskConfig(
            vocab_size=20, corpus_sentences=150, num_utterances=3,
            train_utterances=30, epochs=8, seed=2,
        )
    )


@pytest.fixture(scope="module")
def tiny_scorer():
    dnn = Dnn(DnnConfig(input_dim=6, hidden_dims=(12,), num_classes=4), seed=1)
    priors = DnnScorer.priors_from_labels(np.arange(4), 4)
    return DnnScorer(dnn, priors, acoustic_scale=0.9)


@pytest.fixture()
def config():
    return BeamSearchConfig(beam=14.0, max_active=80)


class TestBatchScorer:
    def test_matches_per_chunk_scoring_bitwise(self, tiny_scorer):
        batch = BatchScorer(tiny_scorer)
        rng = np.random.default_rng(4)
        chunks = [rng.normal(size=(n, 6)) for n in (5, 1, 33, 12)]
        planes = batch.score_chunks(chunks)
        for chunk, plane in zip(chunks, planes):
            np.testing.assert_array_equal(
                plane, tiny_scorer.score(chunk).matrix
            )

    def test_zero_frame_chunk(self, tiny_scorer):
        batch = BatchScorer(tiny_scorer)
        planes = batch.score_chunks(
            [np.empty((0, 6)), np.ones((3, 6)), np.empty((0, 6))]
        )
        assert planes[0].shape == (0, batch.width)
        assert planes[2].shape == (0, batch.width)
        np.testing.assert_array_equal(
            planes[1], tiny_scorer.score(np.ones((3, 6))).matrix
        )

    def test_out_buffers_written_in_place(self, tiny_scorer):
        batch = BatchScorer(tiny_scorer)
        chunks = [np.ones((4, 6)), np.zeros((2, 6))]
        out = [np.empty((4, batch.width)), np.empty((2, batch.width))]
        planes = batch.score_chunks(chunks, out=out)
        assert planes[0] is out[0] and planes[1] is out[1]
        np.testing.assert_array_equal(
            out[0], tiny_scorer.score(np.ones((4, 6))).matrix
        )

    def test_rejects_bad_shapes(self, tiny_scorer):
        batch = BatchScorer(tiny_scorer)
        with pytest.raises(ConfigError):
            batch.score_chunks([np.ones((3, 5))])  # wrong feature width
        with pytest.raises(ConfigError):
            batch.score_chunks([np.ones(6)])  # not 2-D
        with pytest.raises(ConfigError):
            batch.score_chunks(
                [np.ones((3, 6))], out=[np.empty((2, batch.width))]
            )  # out plane too small
        with pytest.raises(ConfigError):
            batch.score_chunks([np.ones((3, 6))], out=[])  # count mismatch


class TestScorePlaneRing:
    def test_round_trip_through_shared_memory(self):
        ring = ScorePlaneRing(plane_frames=10, width=4)
        view = ScorePlaneView(ring.name, 10, 4)
        try:
            generation, offset, slot = ring.try_alloc(6)
            slot[:] = np.arange(24.0).reshape(6, 4)
            np.testing.assert_array_equal(
                view.rows(generation, offset, 6),
                np.arange(24.0).reshape(6, 4),
            )
        finally:
            view.close()
            ring.close()

    def test_flip_and_stall_semantics(self):
        ring = ScorePlaneRing(plane_frames=10, width=2)
        try:
            gen_a, _, _ = ring.try_alloc(6)
            gen_b, offset_b, _ = ring.try_alloc(6)  # flips to plane 1
            assert gen_b == gen_a + 1 and offset_b == 0
            assert ring.flips == 1
            # Next flip targets plane 0, which still has an unacked
            # chunk: the ALB stall.
            assert ring.try_alloc(6) is None
            assert ring.stalls == 1
            ring.release(gen_a)
            gen_c, _, _ = ring.try_alloc(6)
            assert gen_c == gen_b + 1
        finally:
            ring.close()

    def test_chunk_larger_than_plane_rejected(self):
        ring = ScorePlaneRing(plane_frames=4, width=2)
        try:
            with pytest.raises(ConfigError):
                ring.try_alloc(5)
        finally:
            ring.close()

    def test_release_of_negative_generation_is_noop(self):
        ring = ScorePlaneRing(plane_frames=4, width=2)
        try:
            ring.release(-1)
            assert ring.pending_chunks == 0
        finally:
            ring.close()


class TestServerFeaturesMode:
    def test_features_path_bitwise_matches_scores_path(
        self, audio_task, config
    ):
        task = audio_task.task
        base = StreamingServer(task.graph, config).serve_staggered(
            [u.scores for u in task.utterances], chunk_frames=7
        )
        server = StreamingServer(task.graph, config, scorer=audio_task.scorer)
        got = server.serve_staggered(
            [u.features for u in task.utterances],
            chunk_frames=7,
            mode="features",
        )
        for b, g in zip(base, got):
            assert g.error is None
            assert g.result.words == b.result.words
            assert g.result.log_likelihood == b.result.log_likelihood
        assert server.stats.scored_frames == sum(
            u.num_frames for u in task.utterances
        )
        assert server.stats.score_batches >= 1

    def test_mode_mismatch_rejected(self, audio_task, config):
        task = audio_task.task
        server = StreamingServer(task.graph, config, scorer=audio_task.scorer)
        feat_sid = server.open_session(mode="features")
        score_sid = server.open_session()
        with pytest.raises(DecodeError):
            server.push(feat_sid, task.utterances[0].scores)
        with pytest.raises(DecodeError):
            server.push_features(score_sid, task.utterances[0].features)

    def test_features_mode_needs_scorer(self, audio_task, config):
        server = StreamingServer(audio_task.task.graph, config)
        with pytest.raises(ConfigError):
            server.open_session(mode="features")
        with pytest.raises(ConfigError):
            server.open_session(mode="telepathy")


class TestTierFeaturesMode:
    def test_features_path_bitwise_matches_scores_path(
        self, audio_task, config
    ):
        task = audio_task.task
        with ServingTier(
            graph=task.graph,
            search_config=config,
            tier_config=TierConfig(num_workers=2),
        ) as tier:
            base = tier.decode_streaming(
                [u.scores for u in task.utterances], chunk_frames=7
            )
        with ServingTier(
            graph=task.graph,
            search_config=config,
            tier_config=TierConfig(num_workers=2),
            scorer=audio_task.scorer,
        ) as tier:
            got = tier.decode_streaming(
                [u.features for u in task.utterances],
                chunk_frames=7,
                mode="features",
            )
            stats = tier.stats
        for b, g in zip(base, got):
            assert g.words == b.words
            assert g.log_likelihood == b.log_likelihood
        total = sum(u.num_frames for u in task.utterances)
        assert stats.scored_frames == total
        assert stats.frames_shipped == total
        assert stats.score_batches >= 1

    def test_descriptor_transport_is_cheap(self, audio_task, config):
        """The pipe carries descriptors, not score matrices: well under
        the ~328 bytes one pickled float64 score row would cost."""
        task = audio_task.task
        with ServingTier(
            graph=task.graph,
            search_config=config,
            tier_config=TierConfig(num_workers=2),
            scorer=audio_task.scorer,
        ) as tier:
            tier.decode_streaming(
                [u.features for u in task.utterances],
                chunk_frames=7,
                mode="features",
            )
            stats = tier.stats
        assert stats.descriptors_shipped > 0
        assert 0 < stats.ipc_bytes_per_frame < 64

    def test_small_plane_forces_flips_without_changing_words(
        self, audio_task, config
    ):
        """A deliberately tiny plane exercises flips (and possibly
        stalls) on the live path; output must not change."""
        task = audio_task.task
        with ServingTier(
            graph=task.graph,
            search_config=config,
            tier_config=TierConfig(num_workers=1, plane_frames=16),
            scorer=audio_task.scorer,
        ) as tier:
            got = tier.decode_streaming(
                [u.features for u in task.utterances],
                chunk_frames=7,
                mode="features",
            )
        for utt, result in zip(task.utterances, got):
            assert result.words is not None

    def test_mode_mismatch_rejected(self, audio_task, config):
        task = audio_task.task
        with ServingTier(
            graph=task.graph,
            search_config=config,
            tier_config=TierConfig(num_workers=1),
            scorer=audio_task.scorer,
        ) as tier:
            feat_sid = tier.open_session(mode="features")
            score_sid = tier.open_session()
            with pytest.raises(DecodeError):
                tier.push(feat_sid, task.utterances[0].scores.matrix)
            with pytest.raises(DecodeError):
                tier.push_features(score_sid, task.utterances[0].features)
            with pytest.raises(DecodeError):
                tier.push_features(feat_sid, np.ones((3, 3)))  # bad width
            tier.close_input(feat_sid)
            tier.close_input(score_sid)

    def test_features_mode_needs_scorer(self, audio_task, config):
        with ServingTier(
            graph=audio_task.task.graph,
            search_config=config,
            tier_config=TierConfig(num_workers=1),
        ) as tier:
            with pytest.raises(ConfigError):
                tier.open_session(mode="features")
            with pytest.raises(DecodeError):
                sid = tier.open_session()
                tier.push_features(sid, np.ones((2, 2)))

    def test_async_features_front_door(self, audio_task, config):
        task = audio_task.task

        async def client(tier, utt):
            sid = await tier.aopen_session(mode="features")
            feats = utt.features
            for i in range(0, len(feats), 9):
                await tier.apush_features(sid, feats[i: i + 9])
            await tier.aclose_input(sid)
            return await tier.aresult(sid, 60)

        async def main(tier):
            return await asyncio.gather(
                *(client(tier, u) for u in task.utterances)
            )

        with ServingTier(
            graph=task.graph,
            search_config=config,
            tier_config=TierConfig(num_workers=2),
            scorer=audio_task.scorer,
        ) as tier:
            records = asyncio.run(main(tier))
        with ServingTier(
            graph=task.graph,
            search_config=config,
            tier_config=TierConfig(num_workers=2),
        ) as tier:
            base = tier.decode_streaming(
                [u.scores for u in task.utterances], chunk_frames=9
            )
        for expected, record in zip(base, records):
            assert record.ok, record.error
            assert record.result.words == expected.words
            assert record.result.log_likelihood == expected.log_likelihood
