"""Tests for semirings, the error hierarchy, and assorted edge cases."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.common.errors import (
    ConfigError,
    DecodeError,
    GraphError,
    ReproError,
    SimulationError,
)
from repro.wfst import LogProbSemiring, TropicalSemiring

logs = st.floats(min_value=-50.0, max_value=0.0)
costs = st.floats(min_value=0.0, max_value=50.0)


class TestLogProbSemiring:
    def test_identities(self):
        s = LogProbSemiring
        assert s.times(s.one, -2.0) == -2.0
        assert s.plus(s.zero, -2.0) == -2.0

    def test_zero_annihilates_times(self):
        s = LogProbSemiring
        assert s.is_zero(s.times(s.zero, -1.0))

    @given(logs, logs)
    def test_plus_is_max(self, a, b):
        assert LogProbSemiring.plus(a, b) == max(a, b)

    @given(logs, logs, logs)
    def test_times_distributes_over_plus(self, a, b, c):
        s = LogProbSemiring
        left = s.times(a, s.plus(b, c))
        right = s.plus(s.times(a, b), s.times(a, c))
        assert left == pytest.approx(right, abs=1e-9)

    @given(logs, logs)
    def test_better_is_strict_order(self, a, b):
        s = LogProbSemiring
        if a != b:
            assert s.better(a, b) != s.better(b, a)
        else:
            assert not s.better(a, b)


class TestTropicalSemiring:
    def test_identities(self):
        t = TropicalSemiring
        assert t.times(t.one, 3.0) == 3.0
        assert t.plus(t.zero, 3.0) == 3.0
        assert t.is_zero(t.zero)

    @given(costs, costs)
    def test_plus_is_min(self, a, b):
        assert TropicalSemiring.plus(a, b) == min(a, b)

    @given(costs, costs)
    def test_duality_with_logprob(self, a, b):
        """Tropical over costs == log-prob semiring under negation."""
        t, s = TropicalSemiring, LogProbSemiring
        assert t.plus(a, b) == -s.plus(-a, -b)
        assert t.times(a, b) == pytest.approx(-s.times(-a, -b))


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc", [ConfigError, GraphError, DecodeError, SimulationError]
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_catching_base_does_not_catch_unrelated(self):
        with pytest.raises(ValueError):
            try:
                raise ValueError("not ours")
            except ReproError:  # pragma: no cover - must not trigger
                pytest.fail("ReproError must not catch ValueError")


class TestIoVersioning:
    def test_version_mismatch_rejected(self, tmp_path, small_graph):
        import numpy as np

        from repro.wfst import load_wfst, save_wfst

        path = str(tmp_path / "g.npz")
        save_wfst(small_graph, path)
        # Corrupt the version field.
        data = dict(np.load(path))
        data["version"] = np.int64(999)
        np.savez(path, **data)
        with pytest.raises(GraphError):
            load_wfst(path)


class TestSortedLayoutEdgeCases:
    def test_empty_degree_groups_keep_linear_map(self):
        """A graph missing some out-degrees must still map correctly."""
        from repro.wfst import CompiledWfst, Fst, sort_states_by_arc_count

        fst = Fst()
        states = fst.add_states(6)
        fst.set_start(states[0])
        fst.set_final(states[5])
        # Only degrees 1 and 3 occur (2 is an empty group).
        for s in states[:3]:
            fst.add_arc(s, 1, 0, -0.1, states[5])
        for s in states[3:5]:
            for k in range(3):
                fst.add_arc(s, k + 1, 0, -0.1, states[5])
        graph = CompiledWfst.from_fst(fst)
        sorted_graph = sort_states_by_arc_count(graph, max_direct_arcs=4)
        end = sorted_graph.tables.boundaries[-1]
        for s in range(end):
            direct = sorted_graph.direct_lookup(s)
            record = sorted_graph.graph.state_record(s)
            assert direct.first_arc == record.first_arc
            assert direct.num_arcs == record.num_arcs


class TestScorerScale:
    def test_acoustic_scale_scales_loglik(self):
        from repro.acoustic import Dnn, DnnConfig, DnnScorer

        dnn = Dnn(DnnConfig(4, (8,), 3), seed=1)
        priors = DnnScorer.priors_from_labels(np.array([0, 1, 2]), 3)
        x = np.random.default_rng(0).normal(size=(5, 4))
        one = DnnScorer(dnn, priors, acoustic_scale=1.0).score(x)
        half = DnnScorer(dnn, priors, acoustic_scale=0.5).score(x)
        assert np.allclose(half.matrix[:, 1:], 0.5 * one.matrix[:, 1:])


class TestMemoryWorkloadProperties:
    def test_deterministic(self):
        from repro.datasets import SyntheticGraphConfig
        from repro.system import make_memory_workload

        gc = SyntheticGraphConfig(num_states=2000, num_phones=20, seed=9)
        a = make_memory_workload(num_utterances=1, frames_per_utterance=5,
                                 seed=9, graph_config=gc)
        b = make_memory_workload(num_utterances=1, frames_per_utterance=5,
                                 seed=9, graph_config=gc)
        assert np.array_equal(a.scores[0].matrix, b.scores[0].matrix)
        assert a.speech_seconds == b.speech_seconds == 0.05

    def test_scores_are_valid_log_likelihoods(self):
        from repro.datasets import SyntheticGraphConfig
        from repro.system import make_memory_workload

        wl = make_memory_workload(
            num_utterances=2, frames_per_utterance=4, seed=1,
            graph_config=SyntheticGraphConfig(
                num_states=2000, num_phones=20, seed=1
            ),
        )
        for scores in wl.scores:
            assert (scores.matrix[:, 1:] <= 0).all()
            assert (scores.matrix[:, 0] < -1e8).all()
