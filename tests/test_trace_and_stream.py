"""Tests for the pipeline trace facility and the streaming simulation."""

import pytest

from repro.common.errors import ConfigError
from repro.accel import AcceleratorSimulator
from repro.accel.trace import frame_traces, summarize
from repro.system.stream import StreamConfig, simulate_stream


class TestFrameTraces:
    @pytest.fixture(scope="class")
    def result(self, small_task):
        sim = AcceleratorSimulator(small_task.graph, beam=14.0)
        return sim.decode(small_task.utterances[0].scores)

    def test_one_trace_per_frame(self, result):
        traces = frame_traces(result)
        assert len(traces) == result.stats.frames

    def test_cycles_sum_close_to_total(self, result):
        traces = frame_traces(result)
        total = sum(t.cycles for t in traces)
        # Initial epsilon closure and final flush live outside frames.
        assert 0.5 * result.stats.cycles <= total <= result.stats.cycles

    def test_active_tokens_recorded(self, result):
        traces = frame_traces(result)
        assert any(t.active_tokens > 0 for t in traces)

    def test_summary_contains_key_counters(self, result):
        text = summarize(result)
        assert "frames=" in text
        assert "miss:" in text
        assert "hash:" in text
        assert "worst frame" in text


class TestStreaming:
    def test_sustains_realtime_when_stages_fast(self):
        config = StreamConfig(
            batch_frames=50,
            dnn_seconds_per_frame=2e-3,
            search_seconds_per_frame=1e-3,
        )
        report = simulate_stream(1000, config)
        assert report.keeps_up
        assert report.max_latency_s < 1.0

    def test_latency_grows_when_search_too_slow(self):
        config = StreamConfig(
            batch_frames=50,
            dnn_seconds_per_frame=2e-3,
            search_seconds_per_frame=25e-3,  # 2.5x slower than real time
        )
        report = simulate_stream(2000, config)
        assert not report.keeps_up

    def test_batch_timeline_ordered(self):
        report = simulate_stream(325, StreamConfig(batch_frames=50))
        assert len(report.batches) == 7  # 6 full + 1 remainder
        for b in report.batches:
            assert b.audio_complete_s <= b.dnn_done_s
            assert b.dnn_done_s <= b.transfer_done_s
            assert b.transfer_done_s <= b.search_done_s

    def test_latency_positive(self):
        report = simulate_stream(100)
        assert report.mean_latency_s > 0
        assert report.max_latency_s >= report.mean_latency_s

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            StreamConfig(batch_frames=0)
        with pytest.raises(ConfigError):
            simulate_stream(0)
