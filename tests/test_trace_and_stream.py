"""Tests for the pipeline trace facility and the streaming simulation."""

import pytest

from repro.common.errors import ConfigError
from repro.accel import AcceleratorSimulator
from repro.accel.trace import frame_traces, summarize
from repro.system.stream import (
    BatchedStreamConfig,
    StreamConfig,
    max_realtime_streams,
    simulate_batched_stream,
    simulate_stream,
)


class TestFrameTraces:
    @pytest.fixture(scope="class")
    def result(self, small_task):
        sim = AcceleratorSimulator(small_task.graph, beam=14.0)
        return sim.decode(small_task.utterances[0].scores)

    def test_one_trace_per_frame(self, result):
        traces = frame_traces(result)
        assert len(traces) == result.stats.frames

    def test_cycles_sum_close_to_total(self, result):
        traces = frame_traces(result)
        total = sum(t.cycles for t in traces)
        # Initial epsilon closure and final flush live outside frames.
        assert 0.5 * result.stats.cycles <= total <= result.stats.cycles

    def test_active_tokens_recorded(self, result):
        traces = frame_traces(result)
        assert any(t.active_tokens > 0 for t in traces)

    def test_summary_contains_key_counters(self, result):
        text = summarize(result)
        assert "frames=" in text
        assert "miss:" in text
        assert "hash:" in text
        assert "worst frame" in text


class TestStreaming:
    def test_sustains_realtime_when_stages_fast(self):
        config = StreamConfig(
            batch_frames=50,
            dnn_seconds_per_frame=2e-3,
            search_seconds_per_frame=1e-3,
        )
        report = simulate_stream(1000, config)
        assert report.keeps_up
        assert report.max_latency_s < 1.0

    def test_latency_grows_when_search_too_slow(self):
        config = StreamConfig(
            batch_frames=50,
            dnn_seconds_per_frame=2e-3,
            search_seconds_per_frame=25e-3,  # 2.5x slower than real time
        )
        report = simulate_stream(2000, config)
        assert not report.keeps_up

    def test_batch_timeline_ordered(self):
        report = simulate_stream(325, StreamConfig(batch_frames=50))
        assert len(report.batches) == 7  # 6 full + 1 remainder
        for b in report.batches:
            assert b.audio_complete_s <= b.dnn_done_s
            assert b.dnn_done_s <= b.transfer_done_s
            assert b.transfer_done_s <= b.search_done_s

    def test_latency_positive(self):
        report = simulate_stream(100)
        assert report.mean_latency_s > 0
        assert report.max_latency_s >= report.mean_latency_s

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            StreamConfig(batch_frames=0)
        with pytest.raises(ConfigError):
            simulate_stream(0)

    def test_negative_times_rejected(self):
        """Every stage time is validated -- including the batch transfer,
        which used to slip through unchecked."""
        with pytest.raises(ConfigError):
            StreamConfig(frame_period_s=-0.01)
        with pytest.raises(ConfigError):
            StreamConfig(dnn_seconds_per_frame=-1e-5)
        with pytest.raises(ConfigError):
            StreamConfig(search_seconds_per_frame=-1e-5)
        with pytest.raises(ConfigError):
            StreamConfig(transfer_seconds_per_batch=-1e-4)


class TestBatchedStreaming:
    def test_one_stream_matches_single_stream_model(self):
        batched = BatchedStreamConfig(num_streams=1)
        single = StreamConfig()
        a = simulate_batched_stream(1000, batched)
        b = simulate_stream(1000, single)
        assert a.mean_latency_s == pytest.approx(b.mean_latency_s)
        assert a.max_latency_s == pytest.approx(b.max_latency_s)

    def test_more_streams_cost_more_latency(self):
        few = simulate_batched_stream(
            1000, BatchedStreamConfig(num_streams=2)
        )
        many = simulate_batched_stream(
            1000, BatchedStreamConfig(num_streams=64)
        )
        assert many.mean_latency_s >= few.mean_latency_s

    def test_efficiency_zero_makes_streams_free(self):
        config = BatchedStreamConfig(
            num_streams=100,
            dnn_batch_efficiency=0.0,
            search_batch_efficiency=0.0,
        )
        assert config.dnn_seconds_per_batch_frame == pytest.approx(
            config.dnn_seconds_per_frame
        )
        assert config.search_seconds_per_batch_frame == pytest.approx(
            config.search_seconds_per_frame
        )

    def test_max_realtime_streams_monotonic_in_engine_speed(self):
        slow = BatchedStreamConfig(search_seconds_per_frame=3e-3)
        fast = BatchedStreamConfig(search_seconds_per_frame=3e-5)
        assert max_realtime_streams(fast) >= max_realtime_streams(slow)

    def test_max_realtime_streams_keeps_up(self):
        config = BatchedStreamConfig(search_seconds_per_frame=1e-3)
        capacity = max_realtime_streams(config)
        assert capacity >= 1
        from dataclasses import replace

        report = simulate_batched_stream(
            2000, replace(config, num_streams=capacity)
        )
        assert report.keeps_up

    def test_invalid_batched_config_rejected(self):
        with pytest.raises(ConfigError):
            BatchedStreamConfig(num_streams=0)
        with pytest.raises(ConfigError):
            BatchedStreamConfig(search_batch_efficiency=1.5)
        with pytest.raises(ConfigError):
            BatchedStreamConfig(dnn_batch_efficiency=-0.1)
