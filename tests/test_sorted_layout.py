"""Tests for the arc-count-sorted layout (Section IV-B)."""

import numpy as np
import pytest

from repro.common.errors import GraphError
from repro.datasets import SyntheticGraphConfig, generate_kaldi_like_graph
from repro.wfst import sort_states_by_arc_count


@pytest.fixture(scope="module")
def graph():
    return generate_kaldi_like_graph(
        SyntheticGraphConfig(num_states=2000, num_phones=20, seed=5)
    )


@pytest.fixture(scope="module")
def sorted_graph(graph):
    return sort_states_by_arc_count(graph, max_direct_arcs=16)


class TestSorting:
    def test_degrees_ascend_in_sorted_region(self, sorted_graph):
        g = sorted_graph.graph
        end = sorted_graph.tables.boundaries[-1]
        degrees = [g.out_degree(s) for s in range(end)]
        assert degrees == sorted(degrees)
        assert all(1 <= d <= 16 for d in degrees)

    def test_rest_have_large_or_zero_degree(self, sorted_graph):
        g = sorted_graph.graph
        end = sorted_graph.tables.boundaries[-1]
        for s in range(end, g.num_states):
            d = g.out_degree(s)
            assert d == 0 or d > 16

    def test_permutation_is_bijective(self, sorted_graph, graph):
        perm = np.sort(sorted_graph.old_to_new)
        assert (perm == np.arange(graph.num_states)).all()

    def test_invalid_max_arcs_rejected(self, graph):
        with pytest.raises(GraphError):
            sort_states_by_arc_count(graph, max_direct_arcs=0)


class TestDirectLookup:
    def test_matches_state_records_for_all_sorted_states(self, sorted_graph):
        """The comparator bank must agree with the 64-bit state record."""
        g = sorted_graph.graph
        end = sorted_graph.tables.boundaries[-1]
        for s in range(end):
            direct = sorted_graph.direct_lookup(s)
            assert direct is not None
            record = g.state_record(s)
            assert direct.first_arc == record.first_arc
            assert direct.num_arcs == record.num_arcs

    def test_indirect_states_return_none(self, sorted_graph):
        g = sorted_graph.graph
        end = sorted_graph.tables.boundaries[-1]
        for s in range(end, g.num_states):
            assert sorted_graph.direct_lookup(s) is None

    def test_covered_fraction_is_high(self, sorted_graph):
        """Paper: >95% of states are directly addressable with N = 16."""
        assert sorted_graph.covered_state_fraction() > 0.9


class TestSemanticEquivalence:
    def test_arc_multiset_preserved(self, graph, sorted_graph):
        """Sorting permutes states but preserves the transition structure."""
        g = sorted_graph.graph
        o2n = sorted_graph.old_to_new

        def arc_set(graph_, mapper):
            out = set()
            for s in range(graph_.num_states):
                first, n_non_eps, n_eps = graph_.arc_range(s)
                for a in range(first, first + n_non_eps + n_eps):
                    out.add(
                        (
                            mapper(s),
                            mapper(int(graph_.arc_dest[a])),
                            int(graph_.arc_ilabel[a]),
                            int(graph_.arc_olabel[a]),
                            float(np.float32(graph_.arc_weight[a])),
                        )
                    )
            return out

        original = arc_set(graph, lambda s: int(o2n[s]))
        permuted = arc_set(g, lambda s: s)
        assert original == permuted

    def test_final_weights_preserved(self, graph, sorted_graph):
        o2n = sorted_graph.old_to_new
        for s in range(graph.num_states):
            assert sorted_graph.graph.final_weights[o2n[s]] == pytest.approx(
                graph.final_weights[s]
            )

    def test_start_remapped(self, graph, sorted_graph):
        assert sorted_graph.graph.start == int(
            sorted_graph.old_to_new[graph.start]
        )
