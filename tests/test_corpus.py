"""Tests for synthetic corpus generation."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.datasets import CorpusConfig, generate_corpus


def test_sentence_count():
    corpus = generate_corpus(CorpusConfig(vocab_size=50, num_sentences=200, seed=1))
    assert len(corpus) == 200


def test_word_ids_in_range():
    corpus = generate_corpus(CorpusConfig(vocab_size=30, num_sentences=100, seed=2))
    words = [w for s in corpus for w in s]
    assert min(words) >= 1 and max(words) <= 30


def test_mean_length_near_target():
    cfg = CorpusConfig(vocab_size=50, num_sentences=2000, mean_sentence_len=8, seed=3)
    corpus = generate_corpus(cfg)
    mean = np.mean([len(s) for s in corpus])
    assert 5.0 < mean < 12.0


def test_zipf_skew():
    """Top-decile words should dominate the corpus."""
    cfg = CorpusConfig(vocab_size=100, num_sentences=2000, seed=4)
    corpus = generate_corpus(cfg)
    counts = np.bincount(
        [w for s in corpus for w in s], minlength=101
    )[1:]
    top10 = np.sort(counts)[-10:].sum()
    assert top10 > 0.4 * counts.sum()


def test_deterministic():
    cfg = CorpusConfig(vocab_size=20, num_sentences=50, seed=5)
    assert generate_corpus(cfg) == generate_corpus(cfg)


def test_invalid_config_rejected():
    with pytest.raises(ConfigError):
        CorpusConfig(vocab_size=1, num_sentences=10)
    with pytest.raises(ConfigError):
        CorpusConfig(vocab_size=10, num_sentences=0)
