"""Tests for the mutable FST."""

import pytest

from repro.common.errors import GraphError
from repro.common.logmath import LOG_ZERO
from repro.wfst import EPSILON, Fst


def chain_fst():
    fst = Fst()
    s0, s1, s2 = fst.add_states(3)
    fst.set_start(s0)
    fst.add_arc(s0, 1, 10, -0.5, s1)
    fst.add_arc(s1, 2, EPSILON, -0.25, s2)
    fst.set_final(s2, 0.0)
    return fst


class TestConstruction:
    def test_add_states_returns_sequential_ids(self):
        fst = Fst()
        assert fst.add_states(3) == [0, 1, 2]

    def test_counts(self):
        fst = chain_fst()
        assert fst.num_states == 3
        assert fst.num_arcs == 2

    def test_arc_attributes(self):
        fst = chain_fst()
        arc = fst.arcs(0)[0]
        assert (arc.ilabel, arc.olabel, arc.dest) == (1, 10, 1)
        assert arc.weight == -0.5
        assert not arc.is_epsilon

    def test_epsilon_detection(self):
        fst = Fst()
        s = fst.add_state()
        fst.add_arc(s, EPSILON, 5, 0.0, s)
        assert fst.arcs(s)[0].is_epsilon
        assert fst.num_epsilon_arcs() == 1

    def test_negative_label_rejected(self):
        fst = Fst()
        s = fst.add_state()
        with pytest.raises(GraphError):
            fst.add_arc(s, -1, 0, 0.0, s)

    def test_arc_to_missing_state_rejected(self):
        fst = Fst()
        s = fst.add_state()
        with pytest.raises(GraphError):
            fst.add_arc(s, 1, 1, 0.0, 99)


class TestStartAndFinal:
    def test_start_unset_raises(self):
        with pytest.raises(GraphError):
            Fst().start

    def test_has_start(self):
        fst = Fst()
        assert not fst.has_start
        fst.set_start(fst.add_state())
        assert fst.has_start

    def test_final_weight_default_is_log_zero(self):
        fst = Fst()
        s = fst.add_state()
        assert fst.final_weight(s) == LOG_ZERO
        assert not fst.is_final(s)

    def test_set_final(self):
        fst = Fst()
        s = fst.add_state()
        fst.set_final(s, -1.5)
        assert fst.is_final(s)
        assert fst.final_weight(s) == -1.5


class TestMutation:
    def test_replace_arcs(self):
        fst = chain_fst()
        fst.replace_arcs(0, [])
        assert fst.out_degree(0) == 0
        assert fst.num_arcs == 1

    def test_out_degree(self):
        fst = chain_fst()
        assert fst.out_degree(0) == 1
        assert fst.out_degree(2) == 0
