"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_subcommands(self):
        parser = build_parser()
        for cmd in ("compile", "build-task", "decode", "serve", "simulate",
                    "compare"):
            args = parser.parse_args([cmd] if cmd != "simulate" else [cmd])
            assert hasattr(args, "func")

    def test_simulate_config_choices(self):
        parser = build_parser()
        args = parser.parse_args(["simulate", "--config", "arc"])
        assert args.config == "arc"
        with pytest.raises(SystemExit):
            parser.parse_args(["simulate", "--config", "nonsense"])


class TestCommands:
    def test_build_task(self, capsys, tmp_path):
        out = str(tmp_path / "graph.npz")
        code = main(["build-task", "--vocab", "40", "--utterances", "2",
                     "--output", out])
        assert code == 0
        captured = capsys.readouterr().out
        assert "graph" in captured
        assert (tmp_path / "graph.npz").exists()

    def test_decode(self, capsys):
        code = main(["decode", "--vocab", "40", "--utterances", "2",
                     "--seed", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "mean WER" in out
        assert "engine 'reference'" in out

    def test_decode_batch_engine_matches_reference(self, capsys):
        argv = ["decode", "--vocab", "40", "--utterances", "2", "--seed", "4"]
        assert main(argv) == 0
        ref_out = capsys.readouterr().out
        assert main(argv + ["--engine", "batch"]) == 0
        batch_out = capsys.readouterr().out
        assert "engine 'batch'" in batch_out
        # Same word output => identical per-utterance WER lines.
        ref_utts = [ln for ln in ref_out.splitlines() if ln.startswith("utt")]
        batch_utts = [ln for ln in batch_out.splitlines()
                      if ln.startswith("utt")]
        assert ref_utts == batch_utts

    def test_decode_engine_choices(self):
        parser = build_parser()
        assert parser.parse_args(["decode"]).engine == "reference"
        assert not parser.parse_args(["decode"]).streaming
        for engine in ("reference", "batch", "lattice", "gpu"):
            assert parser.parse_args(
                ["decode", "--engine", engine]
            ).engine == engine
        with pytest.raises(SystemExit):
            parser.parse_args(["decode", "--engine", "nonsense"])

    def test_decode_lattice_engine_prints_nbest(self, capsys):
        argv = ["decode", "--vocab", "40", "--utterances", "2", "--seed", "4"]
        assert main(argv) == 0
        ref_out = capsys.readouterr().out
        assert main(argv + ["--engine", "lattice", "--nbest", "2"]) == 0
        lattice_out = capsys.readouterr().out
        assert "engine 'lattice'" in lattice_out
        assert "nbest 1:" in lattice_out
        assert "lattice:" in lattice_out
        # The lattice 1-best equals the reference decode.
        ref_utts = [ln for ln in ref_out.splitlines() if ln.startswith("utt")]
        lat_utts = [ln for ln in lattice_out.splitlines()
                    if ln.startswith("utt")]
        assert ref_utts == lat_utts

    def test_decode_gpu_engine_prints_workload(self, capsys):
        argv = ["decode", "--vocab", "40", "--utterances", "2", "--seed", "4"]
        assert main(argv) == 0
        ref_out = capsys.readouterr().out
        assert main(argv + ["--engine", "gpu"]) == 0
        gpu_out = capsys.readouterr().out
        assert "engine 'gpu'" in gpu_out
        assert "gpu workload:" in gpu_out
        assert "launches" in gpu_out
        ref_utts = [ln for ln in ref_out.splitlines() if ln.startswith("utt")]
        gpu_utts = [ln for ln in gpu_out.splitlines() if ln.startswith("utt")]
        assert ref_utts == gpu_utts

    def test_decode_adaptive_pruning(self, capsys):
        code = main(["decode", "--vocab", "40", "--utterances", "2",
                     "--seed", "4", "--pruning", "adaptive",
                     "--target-active", "50"])
        assert code == 0
        assert "mean WER" in capsys.readouterr().out

    def test_adaptive_requires_target(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            main(["decode", "--vocab", "40", "--utterances", "1",
                  "--pruning", "adaptive"])

    def test_decode_streaming_matches_reference(self, capsys):
        argv = ["decode", "--vocab", "40", "--utterances", "2", "--seed", "4"]
        assert main(argv) == 0
        ref_out = capsys.readouterr().out
        assert main(argv + ["--streaming", "--chunk-frames", "7"]) == 0
        stream_out = capsys.readouterr().out
        assert "engine 'streaming'" in stream_out
        assert "mean occupancy" in stream_out
        ref_utts = [ln for ln in ref_out.splitlines() if ln.startswith("utt")]
        stream_utts = [ln for ln in stream_out.splitlines()
                       if ln.startswith("utt")]
        assert ref_utts == stream_utts

    def test_serve(self, capsys):
        code = main(["serve", "--vocab", "40", "--utterances", "3",
                     "--seed", "4", "--stagger", "2", "--chunk-frames", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("joined") == 3
        assert "served 3 sessions" in out
        assert "mean WER" in out

    def test_serve_rejects_bad_knobs(self):
        from repro.common.errors import ConfigError

        for argv in (["serve", "--chunk-frames", "0"],
                     ["serve", "--stagger", "-1"]):
            with pytest.raises(ConfigError):
                main(argv + ["--vocab", "40", "--utterances", "1"])

    def test_serve_stagger_zero_admits_all_up_front(self, capsys):
        code = main(["serve", "--vocab", "40", "--utterances", "2",
                     "--seed", "4", "--stagger", "0"])
        assert code == 0
        out = capsys.readouterr().out
        joins = [ln for ln in out.splitlines() if "joined" in ln]
        assert len(joins) == 2
        assert all(ln.startswith("[round   0]") for ln in joins)

    def test_simulate_all_configs(self, capsys):
        for config in ("base", "state", "arc", "both"):
            code = main(["simulate", "--vocab", "40", "--utterances", "1",
                         "--seed", "4", "--config", config])
            assert code == 0
            out = capsys.readouterr().out
            assert "cycles" in out
            assert f"config '{config}'" in out

    def test_compare_small(self, capsys):
        code = main(["compare", "--states", "3000", "--frames", "8",
                     "--max-active", "200", "--seed", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ASIC+State&Arc" in out
        assert "vs GPU" in out


class TestCompile:
    def test_compile_composed_prints_pass_report(self, capsys, tmp_path):
        code = main(["compile", "--vocab", "40", "--corpus-sentences",
                     "200", "--seed", "4",
                     "--graph-cache", str(tmp_path / "cache")])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("lexicon", "grammar", "compose", "arcsort", "pack"):
            assert name in out
        assert "1 compile(s)" in out

    def test_compile_is_a_cache_hit_second_time(self, capsys, tmp_path):
        argv = ["compile", "--vocab", "40", "--corpus-sentences", "200",
                "--seed", "4", "--graph-cache", str(tmp_path / "cache")]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "1 hit(s), 0 compile(s)" in out

    def test_compile_synthetic_recipe(self, capsys):
        code = main(["compile", "--states", "2000", "--seed", "3",
                     "--graph-cache", "none"])
        assert code == 0
        out = capsys.readouterr().out
        assert "synthesize" in out

    def test_decode_precompiled_graph_is_word_identical(
        self, capsys, tmp_path
    ):
        bundle = str(tmp_path / "graph.npz")
        assert main(["compile", "--vocab", "40", "--corpus-sentences",
                     "2000", "--seed", "4", "--graph-cache", "none",
                     "--output", bundle]) == 0
        capsys.readouterr()
        base = ["decode", "--vocab", "40", "--utterances", "2",
                "--seed", "4", "--graph-cache", "none"]
        assert main(base) == 0
        fresh = capsys.readouterr().out
        assert main(base + ["--graph", bundle]) == 0
        cached = capsys.readouterr().out
        fresh_utts = [l for l in fresh.splitlines() if l.startswith("utt")]
        cached_utts = [l for l in cached.splitlines() if l.startswith("utt")]
        assert fresh_utts == cached_utts

    def test_decode_trigram_lm_order(self, capsys):
        code = main(["decode", "--vocab", "40", "--utterances", "2",
                     "--seed", "4", "--lm-order", "3",
                     "--graph-cache", "none"])
        assert code == 0
        assert "mean WER" in capsys.readouterr().out
