"""Unit and property tests for log-space arithmetic."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ConfigError
from repro.common.logmath import (
    LOG_ZERO,
    from_prob,
    is_log_zero,
    log_add,
    log_add_array,
    log_mul,
    to_prob,
)

probs = st.floats(min_value=1e-12, max_value=1.0)
logs = st.floats(min_value=-60.0, max_value=0.0)


class TestConversions:
    def test_from_prob_one_is_zero(self):
        assert from_prob(1.0) == 0.0

    def test_from_prob_zero_is_log_zero(self):
        assert is_log_zero(from_prob(0.0))

    def test_from_prob_negative_raises(self):
        with pytest.raises(ConfigError):
            from_prob(-0.1)

    def test_to_prob_of_log_zero(self):
        assert to_prob(LOG_ZERO) == 0.0

    @given(probs)
    def test_round_trip(self, p):
        assert to_prob(from_prob(p)) == pytest.approx(p, rel=1e-12)


class TestLogMul:
    def test_matches_linear_multiplication(self):
        assert to_prob(log_mul(from_prob(0.5), from_prob(0.4))) == pytest.approx(0.2)

    def test_zero_annihilates(self):
        assert is_log_zero(log_mul(LOG_ZERO, 0.0))
        assert is_log_zero(log_mul(-1.0, LOG_ZERO))

    @given(logs, logs)
    def test_commutative(self, a, b):
        assert log_mul(a, b) == log_mul(b, a)

    @given(logs, logs, logs)
    def test_associative(self, a, b, c):
        left = log_mul(log_mul(a, b), c)
        right = log_mul(a, log_mul(b, c))
        assert left == pytest.approx(right, abs=1e-9)


class TestLogAdd:
    def test_matches_linear_addition(self):
        got = to_prob(log_add(from_prob(0.25), from_prob(0.5)))
        assert got == pytest.approx(0.75)

    def test_identity_is_log_zero(self):
        assert log_add(LOG_ZERO, -3.0) == -3.0
        assert log_add(-3.0, LOG_ZERO) == -3.0

    @given(logs, logs)
    def test_commutative(self, a, b):
        assert log_add(a, b) == pytest.approx(log_add(b, a), abs=1e-12)

    @given(logs, logs)
    def test_dominates_max(self, a, b):
        assert log_add(a, b) >= max(a, b)

    @given(logs, logs)
    def test_bounded_by_max_plus_log2(self, a, b):
        assert log_add(a, b) <= max(a, b) + math.log(2.0) + 1e-12


class TestLogAddArray:
    def test_empty_is_log_zero(self):
        assert is_log_zero(log_add_array(np.array([])))

    def test_all_log_zero(self):
        assert is_log_zero(log_add_array(np.array([LOG_ZERO, LOG_ZERO])))

    def test_matches_pairwise(self):
        vals = np.array([-1.0, -2.0, -3.0])
        pairwise = log_add(log_add(-1.0, -2.0), -3.0)
        assert log_add_array(vals) == pytest.approx(pairwise, abs=1e-12)

    @given(st.lists(logs, min_size=1, max_size=20))
    def test_matches_linear_sum(self, values):
        expected = sum(math.exp(v) for v in values)
        got = to_prob(log_add_array(np.array(values)))
        assert got == pytest.approx(expected, rel=1e-9)
