"""Cross-cutting invariants of the cycle-accurate simulator.

These tests pin down conservation and monotonicity properties that any
correct memory-system model must satisfy, independent of calibration.
"""

from dataclasses import replace

import pytest

from repro.accel import AcceleratorConfig, AcceleratorSimulator


@pytest.fixture(scope="module")
def utterance(small_task):
    return small_task.utterances[0].scores


class TestDeterminism:
    def test_identical_runs_identical_stats(self, small_task, utterance):
        a = AcceleratorSimulator(small_task.graph, beam=14.0).decode(utterance)
        b = AcceleratorSimulator(small_task.graph, beam=14.0).decode(utterance)
        assert a.stats.cycles == b.stats.cycles
        assert a.stats.traffic.breakdown() == b.stats.traffic.breakdown()
        assert a.words == b.words


class TestTrafficConservation:
    def test_read_traffic_equals_misses_times_line(self, small_task, utterance):
        """Every byte read from DRAM through a cache is a missed line."""
        result = AcceleratorSimulator(small_task.graph, beam=14.0).decode(
            utterance
        )
        s = result.stats
        line = 64
        assert s.traffic.read_bytes.get("arcs", 0) == s.arc_cache.misses * line
        assert (
            s.traffic.read_bytes.get("states", 0)
            == s.state_cache.misses * line
        )
        assert (
            s.traffic.read_bytes.get("tokens", 0)
            == s.token_cache.misses * line
        )

    def test_token_writes_equal_writebacks(self, small_task, utterance):
        result = AcceleratorSimulator(small_task.graph, beam=14.0).decode(
            utterance
        )
        s = result.stats
        assert (
            s.traffic.write_bytes.get("tokens", 0)
            == s.token_cache.writebacks * 64
        )

    def test_functional_counters_independent_of_config(
        self, small_task, utterance
    ):
        """Cache/hash sizing must never change what is decoded."""
        base = AcceleratorSimulator(small_task.graph, beam=14.0).decode(
            utterance
        )
        tiny_cfg = AcceleratorConfig().scaled(1 / 8)
        tiny = AcceleratorSimulator(
            small_task.graph, tiny_cfg, beam=14.0
        ).decode(utterance)
        assert tiny.words == base.words
        assert tiny.search.arcs_processed == base.search.arcs_processed
        assert tiny.stats.tokens_written == base.stats.tokens_written


class TestMonotonicity:
    def test_cycles_monotone_in_dram_latency(self, small_task, utterance):
        cycles = []
        for latency in (10, 50, 150):
            cfg = replace(AcceleratorConfig(), mem_latency_cycles=latency)
            sim = AcceleratorSimulator(small_task.graph, cfg, beam=14.0)
            cycles.append(sim.decode(utterance).stats.cycles)
        assert cycles[0] <= cycles[1] <= cycles[2]

    def test_smaller_caches_never_faster(self, small_task, utterance):
        big = AcceleratorSimulator(
            small_task.graph, AcceleratorConfig(), beam=14.0
        ).decode(utterance)
        small = AcceleratorSimulator(
            small_task.graph, AcceleratorConfig().scaled(1 / 16), beam=14.0
        ).decode(utterance)
        assert small.stats.cycles >= big.stats.cycles

    def test_wider_beam_more_work(self, small_task, utterance):
        narrow = AcceleratorSimulator(
            small_task.graph, beam=6.0
        ).decode(utterance)
        wide = AcceleratorSimulator(
            small_task.graph, beam=18.0
        ).decode(utterance)
        assert (
            wide.search.arcs_processed >= narrow.search.arcs_processed
        )

    def test_prefetch_never_slower(self, small_task, utterance):
        base = AcceleratorSimulator(
            small_task.graph, AcceleratorConfig(), beam=14.0
        ).decode(utterance)
        pref = AcceleratorSimulator(
            small_task.graph, AcceleratorConfig().with_prefetch(), beam=14.0
        ).decode(utterance)
        assert pref.stats.cycles <= base.stats.cycles


class TestCycleAccounting:
    def test_frame_cycles_sum_below_total(self, small_task, utterance):
        result = AcceleratorSimulator(small_task.graph, beam=14.0).decode(
            utterance
        )
        assert sum(result.stats.frame_cycles) <= result.stats.cycles

    def test_fp_ops_track_arcs(self, small_task, utterance):
        result = AcceleratorSimulator(small_task.graph, beam=14.0).decode(
            utterance
        )
        s = result.stats
        # Two adds per emitting arc, one per epsilon arc.
        assert s.fp_adds == (
            2 * s.arcs_processed + s.epsilon_arcs_processed
        )
        assert s.acoustic_lookups == s.arcs_processed

    def test_tokens_written_matches_search(self, small_task, utterance):
        result = AcceleratorSimulator(small_task.graph, beam=14.0).decode(
            utterance
        )
        assert result.stats.tokens_written == (
            result.search.tokens_created + result.search.tokens_updated
        )
