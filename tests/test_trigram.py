"""Tests for the trigram LM and its three-level grammar transducer."""

import math

import pytest

from repro.common.errors import ConfigError
from repro.common.logmath import to_prob
from repro.datasets import TaskConfig, generate_task
from repro.decoder import BeamSearchConfig, ViterbiDecoder, word_error_rate
from repro.lexicon import build_lexicon_fst
from repro.lm import build_trigram_fst, train_trigram
from repro.lm.ngram import BOS, EOS
from repro.wfst import CompiledWfst, compose
from repro.wfst.ops import check_epsilon_acyclic


@pytest.fixture(scope="module")
def model():
    corpus = [[1, 2, 3], [1, 2, 4], [2, 3, 1], [1, 2, 3], [3, 1, 2]] * 4
    return train_trigram(corpus, vocab_size=4)


class TestTrigramModel:
    def test_observed_trigram_beats_backoff(self, model):
        # (1, 2, 3) occurs twice as often as (1, 2, 4).
        assert model.logprob(3, 1, 2) > model.logprob(4, 1, 2)

    def test_unseen_context_backs_off_to_bigram(self, model):
        # (4, 4) never occurs as a history: falls through to bigram(·|4).
        assert model.logprob(1, 4, 4) == pytest.approx(
            model.bigram.logprob(1, prev=4)
        )

    def test_conditional_sums_to_at_most_one(self, model):
        for history in [(BOS, BOS), (1, 2), (2, 3), (4, 4)]:
            total = sum(
                to_prob(model.logprob(w, *history)) for w in range(1, 5)
            ) + to_prob(model.logprob(EOS, *history))
            assert total <= 1.0 + 1e-9

    def test_mass_conservation_per_history(self, model):
        """Discounted trigram mass + backoff weight == 1."""
        for history in model.backoff_logweight:
            observed = sum(
                math.exp(lp)
                for (a, b, _w), lp in model.trigram_logprob.items()
                if (a, b) == history
            )
            backoff = math.exp(model.backoff_logweight[history])
            assert observed + backoff == pytest.approx(1.0, abs=1e-9)

    def test_sentence_logprob_prefers_training_patterns(self, model):
        assert model.sentence_logprob([1, 2, 3]) > model.sentence_logprob(
            [4, 4, 4]
        )

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigError):
            train_trigram([[1]], vocab_size=1, discount=2.0)
        with pytest.raises(ConfigError):
            train_trigram([[9]], vocab_size=2)


class TestTrigramFst:
    def test_epsilon_acyclic(self, model):
        check_epsilon_acyclic(build_trigram_fst(model))

    def test_acceptor(self, model):
        g = build_trigram_fst(model)
        for s in g.states():
            for arc in g.arcs(s):
                assert arc.ilabel == arc.olabel

    def test_path_weight_matches_model(self, model):
        """Following the best labelled path for a training sentence must
        accumulate exactly the model's sentence log probability."""
        g = build_trigram_fst(model)
        sentence = [1, 2, 3]

        # Viterbi over the acceptor: tokens = (state, score); epsilon arcs
        # are free to traverse (they carry the backoff weights).
        def eps_closure(tokens):
            changed = True
            while changed:
                changed = False
                for state, score in list(tokens.items()):
                    for arc in g.arcs(state):
                        if arc.is_epsilon:
                            new = score + arc.weight
                            if new > tokens.get(arc.dest, -1e30):
                                tokens[arc.dest] = new
                                changed = True
            return tokens

        tokens = eps_closure({g.start: 0.0})
        for word in sentence:
            next_tokens = {}
            for state, score in tokens.items():
                for arc in g.arcs(state):
                    if arc.ilabel == word:
                        new = score + arc.weight
                        if new > next_tokens.get(arc.dest, -1e30):
                            next_tokens[arc.dest] = new
            tokens = eps_closure(next_tokens)

        best = max(
            score + g.final_weight(state)
            for state, score in tokens.items()
            if g.is_final(state)
        )
        assert best == pytest.approx(model.sentence_logprob(sentence))


class TestTrigramDecoding:
    def test_trigram_graph_decodes_with_unchanged_decoder(self):
        """The paper's flexibility claim: swap the LM, keep the decoder."""
        task = generate_task(
            TaskConfig(vocab_size=40, corpus_sentences=250,
                       num_utterances=3, seed=13)
        )
        corpus_words = [list(u.words) for u in task.utterances] * 10
        trigram = train_trigram(corpus_words, task.config.vocab_size)
        graph = CompiledWfst.from_fst(
            compose(
                build_lexicon_fst(task.lexicon),
                build_trigram_fst(trigram),
            )
        )
        decoder = ViterbiDecoder(graph, BeamSearchConfig(beam=14.0))
        total = 0.0
        for utt in task.utterances:
            result = decoder.decode(utt.scores)
            total += word_error_rate(utt.words, result.words)
        assert total / len(task.utterances) < 0.3
