"""Tests for WFST shortest-distance and the ASCII chart helpers."""

import math

import pytest

from repro.common.ascii_plot import bar_chart, line_chart
from repro.common.errors import ConfigError
from repro.common.logmath import LOG_ZERO
from repro.wfst import CompiledWfst, Fst
from repro.wfst.shortest import best_complete_path_score, shortest_distance


def diamond_graph():
    """start -> {a, b} -> final, with asymmetric weights."""
    fst = Fst()
    s0, s1, s2, s3 = fst.add_states(4)
    fst.set_start(s0)
    fst.add_arc(s0, 1, 0, math.log(0.9), s1)
    fst.add_arc(s0, 2, 0, math.log(0.1), s2)
    fst.add_arc(s1, 3, 0, math.log(0.5), s3)
    fst.add_arc(s2, 3, 0, math.log(0.8), s3)
    fst.set_final(s3, math.log(0.7))
    return CompiledWfst.from_fst(fst)


class TestShortestDistance:
    def test_forward_distances(self):
        g = diamond_graph()
        dist = shortest_distance(g)
        assert dist[0] == pytest.approx(0.0)
        assert dist[1] == pytest.approx(math.log(0.9))
        assert dist[2] == pytest.approx(math.log(0.1))
        # Best into the final state goes through s1.
        assert dist[3] == pytest.approx(math.log(0.9 * 0.5))

    def test_reverse_distances(self):
        g = diamond_graph()
        dist = shortest_distance(g, reverse=True)
        assert dist[3] == pytest.approx(math.log(0.7))
        assert dist[1] == pytest.approx(math.log(0.5 * 0.7))
        assert dist[2] == pytest.approx(math.log(0.8 * 0.7))
        assert dist[0] == pytest.approx(math.log(0.9 * 0.5 * 0.7))

    def test_forward_plus_reverse_bounds_total(self):
        g = diamond_graph()
        fwd = shortest_distance(g)
        bwd = shortest_distance(g, reverse=True)
        best = best_complete_path_score(g)
        # Every state's through-path is at most the global best.
        for s in range(g.num_states):
            if fwd[s] > LOG_ZERO / 2 and bwd[s] > LOG_ZERO / 2:
                assert fwd[s] + bwd[s] <= best + 1e-9

    def test_unreachable_states_log_zero(self):
        fst = Fst()
        s0, s1, orphan = fst.add_states(3)
        fst.set_start(s0)
        fst.add_arc(s0, 1, 0, -0.5, s1)
        fst.add_arc(orphan, 1, 0, -0.5, s1)
        fst.set_final(s1)
        g = CompiledWfst.from_fst(fst)
        dist = shortest_distance(g)
        assert dist[2] <= LOG_ZERO / 2

    def test_cycles_converge(self):
        fst = Fst()
        s0, s1 = fst.add_states(2)
        fst.set_start(s0)
        fst.add_arc(s0, 1, 0, -0.5, s1)
        fst.add_arc(s1, 1, 0, -0.5, s0)  # cycle with negative log weight
        fst.set_final(s1)
        g = CompiledWfst.from_fst(fst)
        dist = shortest_distance(g)
        assert dist[1] == pytest.approx(-0.5)

    def test_on_task_graph(self, small_graph):
        dist = shortest_distance(small_graph)
        assert dist[small_graph.start] == 0.0
        assert best_complete_path_score(small_graph) > LOG_ZERO / 2


class TestAsciiPlots:
    def test_bar_chart_renders_all_labels(self):
        chart = bar_chart([("CPU", 32.2), ("GPU", 76.4), ("ASIC", 0.46)])
        assert "CPU" in chart and "GPU" in chart and "ASIC" in chart
        assert chart.count("\n") == 2

    def test_bar_lengths_ordered(self):
        chart = bar_chart([("a", 1.0), ("b", 2.0)])
        rows = chart.splitlines()
        assert rows[1].count("#") > rows[0].count("#")

    def test_log_scale_positive_only(self):
        with pytest.raises(ConfigError):
            bar_chart([("a", 0.0)], log_scale=True)

    def test_log_scale_compresses(self):
        chart = bar_chart(
            [("small", 0.001), ("huge", 1000.0)], log_scale=True, width=30
        )
        rows = chart.splitlines()
        assert rows[0].count("#") >= 1  # small still visible

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            bar_chart([])

    def test_line_chart_contains_markers_and_legend(self):
        chart = line_chart(
            [1, 2, 4, 8],
            [("state", [40.0, 30.0, 25.0, 20.0]),
             ("arc", [50.0, 45.0, 42.0, 40.0])],
        )
        assert "*" in chart and "o" in chart
        assert "state" in chart and "arc" in chart

    def test_line_chart_requires_data(self):
        with pytest.raises(ConfigError):
            line_chart([], [])
