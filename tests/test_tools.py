"""Tests for the CI helper tools (tools/perf_report.py, tools/check_docs.py)."""

from __future__ import annotations

import importlib.util
import json
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_tool(name):
    spec = importlib.util.spec_from_file_location(
        name, REPO_ROOT / "tools" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


perf_report = load_tool("perf_report")
check_docs = load_tool("check_docs")


# ----------------------------------------------------------------------
# perf_report
# ----------------------------------------------------------------------
def trajectory(path: Path, benches) -> str:
    path.write_text(json.dumps({"benches": benches}))
    return str(path)


class TestLoadTrajectory:
    def test_missing_file_is_empty(self, tmp_path):
        assert perf_report.load_trajectory(str(tmp_path / "nope.json")) == {}

    def test_corrupt_file_is_empty(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{torn write")
        assert perf_report.load_trajectory(str(p)) == {}

    def test_missing_benches_key_is_empty(self, tmp_path):
        p = tmp_path / "t.json"
        p.write_text(json.dumps({"other": 1}))
        assert perf_report.load_trajectory(str(p)) == {}

    def test_roundtrip(self, tmp_path):
        benches = {"decode": {"frames_per_second": 100.0}}
        p = trajectory(tmp_path / "t.json", benches)
        assert perf_report.load_trajectory(p) == benches


class TestBuildReport:
    def test_no_baseline_notes_first_run(self):
        lines, warnings = perf_report.build_report(
            {"decode": {"frames_per_second": 100.0}}, {}, 0.2
        )
        assert any("No previous main-branch baseline" in l for l in lines)
        assert not warnings

    def test_regression_beyond_threshold_warns(self):
        lines, warnings = perf_report.build_report(
            {"decode": {"frames_per_second": 70.0}},
            {"decode": {"frames_per_second": 100.0}},
            0.2,
        )
        assert len(warnings) == 1
        assert "regressed" in warnings[0]
        assert any(":warning:" in l for l in lines)

    def test_small_regression_does_not_warn(self):
        _, warnings = perf_report.build_report(
            {"decode": {"frames_per_second": 90.0}},
            {"decode": {"frames_per_second": 100.0}},
            0.2,
        )
        assert not warnings

    def test_improvement_does_not_warn(self):
        lines, warnings = perf_report.build_report(
            {"decode": {"speedup": 3.0}},
            {"decode": {"speedup": 2.0}},
            0.2,
        )
        assert not warnings
        assert any("+50.0%" in l for l in lines)

    def test_bench_only_in_baseline_still_listed(self):
        lines, _ = perf_report.build_report(
            {}, {"gone": {"frames_per_second": 50.0}}, 0.2
        )
        assert any("| gone |" in l for l in lines)


class TestPerfReportMain:
    def test_no_current_trajectory_exits_zero(self, tmp_path, capsys):
        rc = perf_report.main([
            "--current", str(tmp_path / "missing.json"),
            "--baseline", str(tmp_path / "missing2.json"),
        ])
        assert rc == 0
        assert "no current trajectory" in capsys.readouterr().out

    def test_writes_github_step_summary(self, tmp_path, capsys,
                                        monkeypatch):
        current = trajectory(
            tmp_path / "cur.json",
            {"decode": {"frames_per_second": 60.0}},
        )
        baseline = trajectory(
            tmp_path / "base.json",
            {"decode": {"frames_per_second": 100.0}},
        )
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        rc = perf_report.main(["--current", current,
                               "--baseline", baseline])
        assert rc == 0  # warnings never fail the job
        assert "# Perf trajectory" in summary.read_text()
        assert "::warning" in capsys.readouterr().out


# ----------------------------------------------------------------------
# check_docs
# ----------------------------------------------------------------------
def page(root: Path, rel: str, body: str) -> None:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(body), encoding="utf-8")


class TestMarkdownLinks:
    def test_valid_relative_link_ok(self, tmp_path):
        page(tmp_path, "README.md", "[docs](docs/GUIDE.md)")
        page(tmp_path, "docs/GUIDE.md", "guide")
        assert check_docs.check_markdown_links(str(tmp_path)) == []

    def test_broken_link_reported(self, tmp_path):
        page(tmp_path, "README.md", "[gone](docs/MISSING.md)")
        failures = check_docs.check_markdown_links(str(tmp_path))
        assert failures and "MISSING.md" in failures[0]

    def test_anchor_stripped_before_check(self, tmp_path):
        page(tmp_path, "README.md", "[s](docs/GUIDE.md#section)")
        page(tmp_path, "docs/GUIDE.md", "guide")
        assert check_docs.check_markdown_links(str(tmp_path)) == []

    def test_external_and_pure_anchor_links_skipped(self, tmp_path):
        page(tmp_path, "README.md", """
            [ext](https://example.com/x) [m](mailto:a@b.c) [a](#local)
            """)
        assert check_docs.check_markdown_links(str(tmp_path)) == []

    def test_broken_image_reported(self, tmp_path):
        page(tmp_path, "README.md", "![plot](img/missing.png)")
        failures = check_docs.check_markdown_links(str(tmp_path))
        assert failures and "broken image" in failures[0]

    def test_docs_subdir_relative_base(self, tmp_path):
        page(tmp_path, "docs/A.md", "[b](B.md) [up](../README.md)")
        page(tmp_path, "docs/B.md", "b")
        page(tmp_path, "README.md", "r")
        assert check_docs.check_markdown_links(str(tmp_path)) == []

    def test_main_exit_codes(self, tmp_path):
        page(tmp_path, "README.md", "[gone](MISSING.md)")
        assert check_docs.main(
            ["--root", str(tmp_path), "--skip-pydoc"]
        ) == 1
        page(tmp_path, "README.md", "clean")
        assert check_docs.main(
            ["--root", str(tmp_path), "--skip-pydoc"]
        ) == 0


class TestPydocImportability:
    def test_real_package_renders(self):
        # The full check over the installed package: every repro module
        # must import and carry a docstring (same gate CI runs).
        assert check_docs.check_pydoc_importability() == []

    def test_real_repo_links_resolve(self):
        assert check_docs.check_markdown_links(str(REPO_ROOT)) == []
