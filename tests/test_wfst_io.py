"""Tests for WFST serialisation."""

import numpy as np
import pytest

from repro.wfst import load_wfst, save_wfst


def test_round_trip_is_bit_exact(tmp_path, small_graph):
    path = str(tmp_path / "graph.npz")
    save_wfst(small_graph, path)
    loaded = load_wfst(path)
    assert loaded.start == small_graph.start
    assert (loaded.states_packed == small_graph.states_packed).all()
    assert (loaded.arc_dest == small_graph.arc_dest).all()
    assert (loaded.arc_weight == small_graph.arc_weight).all()
    assert (loaded.arc_ilabel == small_graph.arc_ilabel).all()
    assert (loaded.arc_olabel == small_graph.arc_olabel).all()
    assert np.allclose(loaded.final_weights, small_graph.final_weights)


def test_load_appends_npz_suffix(tmp_path, small_graph):
    path = str(tmp_path / "graph2")
    save_wfst(small_graph, path)
    loaded = load_wfst(path)  # without .npz
    assert loaded.num_states == small_graph.num_states


def test_missing_file_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_wfst(str(tmp_path / "nope.npz"))
