"""Tests for WFST serialisation: plain graphs and compiler artifact bundles."""

from pathlib import Path

import numpy as np
import pytest

from repro.common.errors import GraphError
from repro.wfst import (
    load_any_graph,
    load_graph_bundle,
    load_graph_mmap,
    load_wfst,
    save_graph_bundle,
    save_graph_mmap,
    save_wfst,
)


def assert_graphs_bit_exact(loaded, graph):
    assert loaded.start == graph.start
    assert (loaded.states_packed == graph.states_packed).all()
    assert (loaded.arc_dest == graph.arc_dest).all()
    assert (loaded.arc_weight == graph.arc_weight).all()
    assert (loaded.arc_ilabel == graph.arc_ilabel).all()
    assert (loaded.arc_olabel == graph.arc_olabel).all()
    assert np.allclose(loaded.final_weights, graph.final_weights)


def test_round_trip_is_bit_exact(tmp_path, small_graph):
    path = str(tmp_path / "graph.npz")
    save_wfst(small_graph, path)
    assert_graphs_bit_exact(load_wfst(path), small_graph)


def test_accepts_pathlib_path(tmp_path, small_graph):
    path = tmp_path / "graph.npz"
    assert isinstance(path, Path)
    save_wfst(small_graph, path)
    loaded = load_wfst(path)
    assert loaded.num_states == small_graph.num_states


def test_load_appends_npz_suffix(tmp_path, small_graph):
    path = str(tmp_path / "graph2")
    save_wfst(small_graph, path)
    loaded = load_wfst(path)  # without .npz
    assert loaded.num_states == small_graph.num_states


def test_missing_file_raises_graph_error(tmp_path):
    with pytest.raises(GraphError):
        load_wfst(str(tmp_path / "nope.npz"))
    with pytest.raises(GraphError):
        load_graph_bundle(tmp_path / "nope.npz")


def test_version_mismatch_raises_graph_error(tmp_path, small_graph):
    path = str(tmp_path / "graph.npz")
    save_wfst(small_graph, path)
    with np.load(path) as data:
        payload = {name: data[name] for name in data.files}
    payload["version"] = np.int64(999)
    np.savez_compressed(path, **payload)
    with pytest.raises(GraphError, match="version"):
        load_wfst(path)


class TestBundles:
    def test_round_trip_preserves_graph_and_meta(self, tmp_path, small_graph):
        path = tmp_path / "graph.bundle.npz"
        passes = [{"name": "pack", "seconds": 0.5}]
        save_graph_bundle(
            small_graph,
            path,
            fingerprint=small_graph.fingerprint(),
            recipe={"kind": "composed", "seed": 11},
            passes=passes,
        )
        loaded, meta = load_graph_bundle(path)
        assert_graphs_bit_exact(loaded, small_graph)
        assert meta["fingerprint"] == small_graph.fingerprint()
        assert meta["recipe"]["seed"] == 11
        assert meta["passes"] == passes
        # The stored fingerprint is stamped, not recomputed.
        assert loaded.fingerprint() == small_graph.fingerprint()

    def test_bundle_version_mismatch_raises(self, tmp_path, small_graph):
        path = str(tmp_path / "graph.bundle.npz")
        save_graph_bundle(
            small_graph, path,
            fingerprint=small_graph.fingerprint(), recipe={}, passes=[],
        )
        with np.load(path) as data:
            payload = {name: data[name] for name in data.files}
        payload["bundle_version"] = np.int64(999)
        np.savez_compressed(path, **payload)
        with pytest.raises(GraphError, match="bundle version"):
            load_graph_bundle(path)

    def test_plain_graph_is_not_a_bundle(self, tmp_path, small_graph):
        path = str(tmp_path / "plain.npz")
        save_wfst(small_graph, path)
        with pytest.raises(GraphError, match="not a graph bundle"):
            load_graph_bundle(path)

    def test_load_any_graph_handles_both(self, tmp_path, small_graph):
        plain = tmp_path / "plain.npz"
        bundle = tmp_path / "bundle.npz"
        save_wfst(small_graph, plain)
        save_graph_bundle(
            small_graph, bundle,
            fingerprint=small_graph.fingerprint(), recipe={}, passes=[],
        )
        for path in (plain, bundle):
            assert_graphs_bit_exact(load_any_graph(path), small_graph)


class TestMmapLayout:
    def test_round_trip_is_bit_exact_and_mapped(self, tmp_path, small_graph):
        directory = str(tmp_path / "g.mmap")
        assert save_graph_mmap(small_graph, directory) == directory
        loaded = load_graph_mmap(directory)
        assert_graphs_bit_exact(loaded, small_graph)
        # The arrays really are memory-mapped, not materialised copies.
        assert isinstance(loaded.arc_dest, np.memmap)
        assert isinstance(loaded.states_packed, np.memmap)

    def test_save_is_idempotent(self, tmp_path, small_graph):
        directory = str(tmp_path / "g.mmap")
        save_graph_mmap(small_graph, directory)
        before = (tmp_path / "g.mmap" / "meta.json").stat().st_mtime_ns
        save_graph_mmap(small_graph, directory)  # second writer: no-op
        after = (tmp_path / "g.mmap" / "meta.json").stat().st_mtime_ns
        assert before == after

    def test_fingerprint_is_stamped(self, tmp_path, small_graph):
        directory = str(tmp_path / "g.mmap")
        save_graph_mmap(
            small_graph, directory, fingerprint=small_graph.fingerprint()
        )
        loaded = load_graph_mmap(directory)
        assert loaded.fingerprint() == small_graph.fingerprint()

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(GraphError):
            load_graph_mmap(tmp_path / "nope.mmap")

    def test_version_mismatch_raises(self, tmp_path, small_graph):
        import json

        directory = tmp_path / "g.mmap"
        save_graph_mmap(small_graph, str(directory))
        meta = json.loads((directory / "meta.json").read_text())
        meta["version"] = 999
        (directory / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(GraphError, match="version"):
            load_graph_mmap(directory)

    def test_torn_layout_raises(self, tmp_path, small_graph):
        directory = tmp_path / "g.mmap"
        save_graph_mmap(small_graph, str(directory))
        (directory / "arc_dest.npy").unlink()
        with pytest.raises(GraphError):
            load_graph_mmap(directory)

    def test_load_any_graph_dispatches_on_directory(
        self, tmp_path, small_graph
    ):
        directory = tmp_path / "g.mmap"
        save_graph_mmap(small_graph, str(directory))
        assert_graphs_bit_exact(load_any_graph(directory), small_graph)

    def test_cache_mmap_dir_is_content_addressed(self, tmp_path):
        from repro.datasets import SyntheticGraphConfig
        from repro.graph import GraphCache, GraphRecipe

        cache = GraphCache(str(tmp_path / "cache"))
        recipe = GraphRecipe.synthetic_graph(
            SyntheticGraphConfig(num_states=50, num_phones=8, seed=3)
        )
        first = cache.mmap_dir(recipe)
        second = cache.mmap_dir(recipe)  # idempotent, same address
        assert first == second
        assert cache.get(recipe).fingerprint in first
        loaded = load_graph_mmap(first)
        assert_graphs_bit_exact(loaded, cache.get(recipe).graph)
