"""Tests for WER scoring."""

import pytest
from hypothesis import given, strategies as st

from repro.decoder import levenshtein, word_error_rate

seqs = st.lists(st.integers(1, 5), max_size=12)


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein([1, 2, 3], [1, 2, 3]) == 0

    def test_substitution(self):
        assert levenshtein([1, 2, 3], [1, 9, 3]) == 1

    def test_insertion_and_deletion(self):
        assert levenshtein([1, 2], [1, 2, 3]) == 1
        assert levenshtein([1, 2, 3], [1, 3]) == 1

    def test_empty(self):
        assert levenshtein([], [1, 2]) == 2
        assert levenshtein([1], []) == 1
        assert levenshtein([], []) == 0

    @given(seqs, seqs)
    def test_symmetric(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(seqs, seqs, seqs)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(seqs)
    def test_identity(self, a):
        assert levenshtein(a, a) == 0


class TestWer:
    def test_perfect(self):
        assert word_error_rate([1, 2], [1, 2]) == 0.0

    def test_empty_ref_nonempty_hyp(self):
        assert word_error_rate([], [1]) == 1.0

    def test_both_empty(self):
        assert word_error_rate([], []) == 0.0

    def test_normalised_by_ref_length(self):
        assert word_error_rate([1, 2, 3, 4], [1, 2, 3, 9]) == pytest.approx(0.25)
