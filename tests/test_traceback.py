"""Committed-prefix traceback: property suite and edge pins.

The contract of :mod:`repro.decoder.traceback`: under any
``commit_interval``, any chunking, any pruning strategy and any array
backend,

* every committed prefix observed during streaming is a prefix of the
  offline ``BatchDecoder.decode`` output and is never retracted;
* the finalized hypothesis (``committed + tail``) is word- and
  score-identical to the offline decode;
* compaction is invisible to every downstream consumer -- including the
  fused multi-session sweep.

Plus unit pins for the buffer itself (append growth, backtrack,
commit/compaction arithmetic) and the ``_PrefixView`` stats snapshot.
"""

import math

import numpy as np
import pytest

from repro.common.errors import ConfigError, DecodeError
from repro.decoder import (
    BatchDecoder,
    DecoderConfig,
    advance_sessions,
    numba_available,
)
from repro.decoder.result import _PrefixView
from repro.decoder.traceback import (
    TRACE_RECORD_BYTES,
    TokenTrace,
    trace_reachable_numpy,
)
from repro.wfst import CompiledWfst, Fst

#: Every backend importable in this environment ("numpy" always).
BACKENDS = ["numpy"] + (["numba"] if numba_available() else [])

#: The three pruning strategies of the kernel, exercised as configs.
PRUNING_CONFIGS = {
    "beam": dict(beam=14.0),
    "beam+max_active": dict(beam=14.0, max_active=60),
    "adaptive": dict(beam=14.0, pruning="adaptive", target_active=50),
}

RAGGED_CHUNKINGS = [(1,), (3,), (1, 5, 2), (4, 1, 1, 9)]


def chunks_of(matrix, sizes):
    """Split a score matrix into consecutive chunks of the given sizes."""
    out, at = [], 0
    while at < len(matrix):
        for size in sizes:
            out.append(matrix[at: at + size])
            at += size
            if at >= len(matrix):
                break
    return [c for c in out if len(c)]


def stream_with_commits(decoder, matrix, sizes):
    """Push ``matrix`` chunk by chunk, observing a partial per chunk.

    Returns the finalized result plus every committed prefix observed.
    """
    session = decoder.open_session()
    prefixes = []
    for chunk in chunks_of(matrix, sizes):
        session.push(chunk)
        partial = session.partial()
        assert partial.words[: partial.committed_len] == partial.committed
        prefixes.append(partial.committed)
    return session.finalize(), prefixes


def assert_prefixes_stable(prefixes, final_words):
    """Committed prefixes must be monotone and prefixes of the final."""
    prev_len = 0
    for prefix in prefixes:
        assert len(prefix) >= prev_len, "committed prefix shrank"
        prev_len = len(prefix)
        assert final_words[: len(prefix)] == prefix, (
            "committed words were retracted by the final hypothesis"
        )


class TestCommittedPrefixProperty:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("pruning", sorted(PRUNING_CONFIGS))
    @pytest.mark.parametrize("sizes", RAGGED_CHUNKINGS)
    def test_committed_is_prefix_of_offline(
        self, small_task, backend, pruning, sizes
    ):
        config = DecoderConfig(
            backend=backend, commit_interval=3, **PRUNING_CONFIGS[pruning]
        )
        decoder = BatchDecoder(small_task.graph, config)
        for utt in small_task.utterances:
            offline = decoder.decode(utt.scores)
            result, prefixes = stream_with_commits(
                decoder, utt.scores.matrix, sizes
            )
            assert result.words == offline.words
            assert result.log_likelihood == offline.log_likelihood
            assert result.reached_final == offline.reached_final
            assert_prefixes_stable(prefixes, offline.words)
            assert result.committed + result.tail == result.words

    @pytest.mark.parametrize("interval", [1, 2, 5, 8])
    def test_every_interval_is_lossless(self, small_task, interval):
        baseline = BatchDecoder(
            small_task.graph, DecoderConfig(beam=14.0, max_active=60)
        )
        decoder = BatchDecoder(
            small_task.graph,
            DecoderConfig(beam=14.0, max_active=60, commit_interval=interval),
        )
        for utt in small_task.utterances:
            offline = baseline.decode(utt.scores)
            result, prefixes = stream_with_commits(
                decoder, utt.scores.matrix, (1,)
            )
            assert result.words == offline.words
            assert result.log_likelihood == offline.log_likelihood
            assert_prefixes_stable(prefixes, offline.words)

    @pytest.mark.skipif(not numba_available(), reason="numba not installed")
    def test_backends_commit_identically(self, small_task):
        """The compiled reachability mark must not change one committed
        word, one trace byte, or the final score."""
        runs = {}
        for backend in ("numpy", "numba"):
            decoder = BatchDecoder(
                small_task.graph,
                DecoderConfig(beam=14.0, backend=backend, commit_interval=2),
            )
            utt = small_task.utterances[0]
            result, prefixes = stream_with_commits(
                decoder, utt.scores.matrix, (2,)
            )
            runs[backend] = (
                result.words, result.log_likelihood, result.committed_len,
                prefixes,
            )
        assert runs["numpy"] == runs["numba"]

    def test_trace_memory_is_bounded(self, small_task):
        """Windowed peak trace memory must undercut append-only's."""
        utt = max(small_task.utterances, key=lambda u: u.num_frames)

        def peak(interval):
            decoder = BatchDecoder(
                small_task.graph,
                DecoderConfig(beam=14.0, commit_interval=interval),
            )
            session = decoder.open_session()
            session.push(utt.scores)
            assert session.committed_frames == (
                0 if interval == 0
                else utt.num_frames - utt.num_frames % interval
            )
            session.finalize()
            return session.trace_peak_bytes

        assert peak(2) < peak(0)


class TestFusedSweepCommits:
    def test_fused_commits_match_solo_and_offline(self, small_task):
        config = DecoderConfig(beam=12.0, max_active=40, commit_interval=3)
        decoder = BatchDecoder(small_task.graph, config)
        utts = small_task.utterances
        solo = [decoder.decode(u.scores) for u in utts]

        sessions = [decoder.open_session() for _ in utts]
        max_frames = max(u.num_frames for u in utts)
        for frame in range(max_frames):
            advance_sessions(
                [
                    (s, u.scores.frame(frame))
                    for s, u in zip(sessions, utts)
                    if frame < u.num_frames
                ]
            )
        for expected, session, utt in zip(solo, sessions, utts):
            assert session.committed_frames > 0
            result = session.finalize()
            assert result.words == expected.words
            assert result.log_likelihood == expected.log_likelihood
            assert result.committed + result.tail == result.words


class TestEdgePins:
    def test_commit_skipped_when_beam_empties(self):
        """s0 --A--> s1(final, no out-arcs): frame 2 empties the frontier
        with commits due every frame -- the dead frame must skip its
        commit, keep the emptied-beam diagnostics, and not crash."""
        fst = Fst()
        s0, s1 = fst.add_states(2)
        fst.set_start(s0)
        fst.add_arc(s0, 1, 1, math.log(0.9), s1)
        fst.set_final(s1, 0.0)
        graph = CompiledWfst.from_fst(fst)
        decoder = BatchDecoder(
            graph, DecoderConfig(beam=20.0, commit_interval=1)
        )
        frame = np.full(3, -50.0)
        frame[1] = -0.1
        session = decoder.open_session()
        session.push_frame(frame)
        assert session.committed_frames == 1  # committed while alive
        session.push_frame(frame)  # absorbed; frontier now empty
        assert not session.alive
        assert session.committed_frames == 1  # the dead frame skipped
        with pytest.raises(DecodeError, match="beam emptied .* frame 2"):
            session.push_frame(frame)
        with pytest.raises(DecodeError, match="no active tokens"):
            session.finalize()

    def test_zero_frame_session(self, small_task):
        decoder = BatchDecoder(
            small_task.graph, DecoderConfig(beam=14.0, commit_interval=1)
        )
        session = decoder.open_session()
        assert session.committed_frames == 0
        assert session.trace_memory_bytes == 64 * TRACE_RECORD_BYTES
        with pytest.raises(DecodeError, match="no frames"):
            session.finalize()

    def test_window_larger_than_utterance(self, small_task):
        """A window the utterance never fills must behave exactly like
        the append-only buffer: no commits, identical peak memory."""
        utt = small_task.utterances[0]
        results = {}
        for interval in (0, 10_000):
            decoder = BatchDecoder(
                small_task.graph,
                DecoderConfig(beam=14.0, commit_interval=interval),
            )
            session = decoder.open_session()
            session.push(utt.scores)
            assert session.committed_frames == 0
            result = session.finalize()
            assert result.committed_len == 0
            assert result.committed == ()
            assert result.tail == result.words
            results[interval] = (
                result.words, result.log_likelihood, session.trace_peak_bytes
            )
        assert results[0] == results[10_000]

    def test_negative_interval_rejected(self, small_task):
        with pytest.raises(ConfigError, match="commit_interval"):
            DecoderConfig(beam=14.0, commit_interval=-1)
        with pytest.raises(ConfigError, match="commit_interval"):
            TokenTrace(commit_interval=-1)


class TestTokenTraceUnit:
    def _chain(self, trace, words):
        """Append a single chain root -> ... -> tip; returns tip index."""
        tip = -1
        for word in words:
            (tip,) = trace.append_bulk(
                np.array([tip], dtype=np.int64),
                np.array([word], dtype=np.int64),
            )
        return int(tip)

    def test_historical_import_path(self):
        from repro.decoder.kernel import TokenTrace as KernelTokenTrace

        assert KernelTokenTrace is TokenTrace

    def test_append_bulk_grows_once_per_resize(self):
        trace = TokenTrace()
        assert trace.nbytes == 64 * TRACE_RECORD_BYTES
        indices = trace.append_bulk(
            np.full(100, -1, dtype=np.int64),
            np.arange(100, dtype=np.int64),
        )
        assert list(indices) == list(range(100))
        assert len(trace) == 100
        assert trace.nbytes == 128 * TRACE_RECORD_BYTES
        assert trace.peak_bytes == trace.nbytes
        assert trace.backtrack(int(indices[5])) == [5]  # word 0 dropped

    def test_commit_emits_and_compacts(self):
        # Two chains sharing the prefix [1, 2]: the LCA commits it and
        # the buffer shrinks to the anchor plus the two live tails.
        trace = TokenTrace(commit_interval=4)
        a = self._chain(trace, [1, 2, 3])
        (b,) = trace.append_bulk(
            np.array([a - 1], dtype=np.int64), np.array([4], dtype=np.int64)
        )
        assert trace.should_commit(4)
        bps = np.array([a, b], dtype=np.int64)
        new_bps = trace.commit(bps, num_frames=4)
        assert trace.committed == (1, 2)
        assert trace.commits == 1
        assert trace.committed_frames == 4
        assert len(trace) == 3  # anchor root + the [3] and [4] tails
        assert trace.backtrack(int(new_bps[0])) == [3]
        assert trace.backtrack(int(new_bps[1])) == [4]

    def test_commit_with_nothing_to_emit(self):
        # Frontier forked directly at the wordless root: the LCA is the
        # root, nothing commits, every record survives the compaction.
        trace = TokenTrace(commit_interval=1)
        (root,) = trace.append_bulk(
            np.array([-1], dtype=np.int64), np.array([0], dtype=np.int64)
        )
        forks = trace.append_bulk(
            np.array([root, root], dtype=np.int64),
            np.array([1, 2], dtype=np.int64),
        )
        new_bps = trace.commit(forks.copy(), num_frames=1)
        assert trace.committed == ()
        assert trace.commits == 1
        assert len(trace) == 3
        assert trace.backtrack(int(new_bps[0])) == [1]
        assert trace.backtrack(int(new_bps[1])) == [2]

    def test_multi_root_trace_commits_as_a_noop(self):
        # Live chains reaching *distinct* roots have no anchor; commit
        # must leave the buffer and backpointers untouched (kernel
        # traces are single-rooted, this pins the hand-built case).
        trace = TokenTrace(commit_interval=1)
        indices = trace.append_bulk(
            np.array([-1, -1], dtype=np.int64),
            np.array([1, 2], dtype=np.int64),
        )
        new_bps = trace.commit(indices.copy(), num_frames=1)
        assert trace.committed == ()
        assert trace.commits == 0
        assert list(new_bps) == list(indices)
        assert trace.backtrack(int(new_bps[0])) == [1]
        assert trace.backtrack(int(new_bps[1])) == [2]

    def test_reachability_reference_mask(self):
        # 0 <- 1 <- 2 and 0 <- 3; frontier {2}: record 3 is garbage.
        prev = np.array([-1, 0, 1, 0], dtype=np.int64)
        keep = trace_reachable_numpy(
            prev, 4, np.array([2], dtype=np.int64), anchor=0
        )
        assert keep.tolist() == [True, True, True, False]


class TestPrefixView:
    def test_pins_length_and_supports_sequence_ops(self):
        data = [10, 20, 30]
        view = _PrefixView(data, 3)
        data.append(40)  # the live list keeps growing underneath
        assert len(view) == 3
        assert list(view) == [10, 20, 30]
        assert view[-1] == 30
        assert view[1:] == [20, 30]
        assert view == [10, 20, 30]
        assert view == (10, 20, 30)
        with pytest.raises(IndexError):
            view[3]

    def test_snapshot_stats_freeze_per_frame_lists(self, small_task):
        decoder = BatchDecoder(small_task.graph, DecoderConfig(beam=14.0))
        utt = small_task.utterances[0]
        session = decoder.open_session()
        session.push(utt.scores.matrix[:4])
        snapshot = session.partial().stats
        frozen = list(snapshot.active_tokens_per_frame)
        session.push(utt.scores.matrix[4:])
        assert len(snapshot.active_tokens_per_frame) == 4
        assert list(snapshot.active_tokens_per_frame) == frozen
