"""Tests for lattice decoding and N-best extraction."""

import pytest

from repro.common.errors import ConfigError
from repro.decoder import BeamSearchConfig, ViterbiDecoder, word_error_rate
from repro.decoder.lattice import LatticeDecoder


@pytest.fixture(scope="module")
def lattice_task():
    from repro.datasets import TaskConfig, generate_task

    # Short utterances keep the lattice (and Yen's algorithm) small.
    return generate_task(
        TaskConfig(vocab_size=40, corpus_sentences=200, num_utterances=2,
                   utterance_words=2, mean_frames_per_phone=4, seed=17)
    )


@pytest.fixture(scope="module")
def decoded(lattice_task):
    config = BeamSearchConfig(beam=12.0)
    lattice_decoder = LatticeDecoder(
        lattice_task.graph, config, lattice_beam=6.0
    )
    viterbi = ViterbiDecoder(lattice_task.graph, config)
    utt = lattice_task.utterances[0]
    return (
        lattice_decoder.decode(utt.scores),
        viterbi.decode(utt.scores),
        utt,
    )


class TestLattice:
    def test_best_path_matches_viterbi(self, decoded):
        lattice, viterbi_result, _utt = decoded
        best = lattice.best_path()
        assert best.words == viterbi_result.words
        assert best.log_likelihood == pytest.approx(
            viterbi_result.log_likelihood
        )

    def test_nbest_scores_non_increasing(self, decoded):
        lattice, _vit, _utt = decoded
        entries = lattice.nbest(5)
        assert len(entries) >= 1
        scores = [e.log_likelihood for e in entries]
        assert scores == sorted(scores, reverse=True)

    def test_nbest_hypotheses_distinct(self, decoded):
        lattice, _vit, _utt = decoded
        entries = lattice.nbest(5)
        words = [e.words for e in entries]
        assert len(set(words)) == len(words)

    @pytest.mark.slow
    def test_oracle_wer_at_most_onebest(self, decoded):
        lattice, viterbi_result, utt = decoded
        onebest = word_error_rate(utt.words, viterbi_result.words)
        assert lattice.oracle_wer(utt.words, k=10) <= onebest + 1e-9

    def test_lattice_has_nodes_and_edges(self, decoded):
        lattice, _vit, _utt = decoded
        assert lattice.num_nodes > 0
        assert lattice.num_edges > lattice.num_nodes  # alternatives exist

    def test_wider_lattice_beam_keeps_more(self, lattice_task):
        utt = lattice_task.utterances[1]
        config = BeamSearchConfig(beam=12.0)
        narrow = LatticeDecoder(lattice_task.graph, config, lattice_beam=2.0)
        wide = LatticeDecoder(lattice_task.graph, config, lattice_beam=10.0)
        n = narrow.decode(utt.scores)
        w = wide.decode(utt.scores)
        assert w.num_nodes >= n.num_nodes

    def test_invalid_params_rejected(self, small_graph):
        with pytest.raises(ConfigError):
            LatticeDecoder(small_graph, lattice_beam=0.0)

    def test_nbest_max_paths_validated(self, decoded):
        lattice, _vit, _utt = decoded
        for bad in (0, -1):
            with pytest.raises(ConfigError):
                lattice.nbest(1, max_paths=bad)
        # Valid explicit caps still work (1 path => at most 1 hypothesis).
        assert len(lattice.nbest(5, max_paths=1)) <= 1

    def test_no_final_token_falls_back_like_viterbi(self):
        """A dead-end search yields the reference decoders' best-live-token
        hypothesis instead of raising."""
        import math

        import numpy as np

        from repro.acoustic.scorer import AcousticScores
        from repro.wfst import CompiledWfst, Fst

        fst = Fst()
        s0, s1, s2 = fst.add_states(3)
        fst.set_start(s0)
        fst.add_arc(s0, 1, 1, 0.0, s1)
        fst.add_arc(s1, 2, 2, 0.0, s2)
        fst.set_final(s2)
        graph = CompiledWfst.from_fst(fst)
        # One frame only: the final state is unreachable.
        matrix = np.full((1, 3), -1e9)
        matrix[0, 1] = math.log(0.8)
        scores = AcousticScores(matrix)

        config = BeamSearchConfig(beam=30.0)
        reference = ViterbiDecoder(graph, config).decode(scores)
        assert not reference.reached_final
        lattice = LatticeDecoder(graph, config).decode(scores)
        best = lattice.best_path()
        assert best.words == reference.words
        assert best.log_likelihood == pytest.approx(
            reference.log_likelihood
        )
