"""Tests for lattice decoding and N-best extraction."""

import pytest

from repro.common.errors import ConfigError
from repro.decoder import BeamSearchConfig, ViterbiDecoder, word_error_rate
from repro.decoder.lattice import LatticeDecoder


@pytest.fixture(scope="module")
def lattice_task():
    from repro.datasets import TaskConfig, generate_task

    # Short utterances keep the lattice (and Yen's algorithm) small.
    return generate_task(
        TaskConfig(vocab_size=40, corpus_sentences=200, num_utterances=2,
                   utterance_words=2, mean_frames_per_phone=4, seed=17)
    )


@pytest.fixture(scope="module")
def decoded(lattice_task):
    config = BeamSearchConfig(beam=12.0)
    lattice_decoder = LatticeDecoder(
        lattice_task.graph, config, lattice_beam=6.0
    )
    viterbi = ViterbiDecoder(lattice_task.graph, config)
    utt = lattice_task.utterances[0]
    return (
        lattice_decoder.decode(utt.scores),
        viterbi.decode(utt.scores),
        utt,
    )


class TestLattice:
    def test_best_path_matches_viterbi(self, decoded):
        lattice, viterbi_result, _utt = decoded
        best = lattice.best_path()
        assert best.words == viterbi_result.words
        assert best.log_likelihood == pytest.approx(
            viterbi_result.log_likelihood
        )

    def test_nbest_scores_non_increasing(self, decoded):
        lattice, _vit, _utt = decoded
        entries = lattice.nbest(5)
        assert len(entries) >= 1
        scores = [e.log_likelihood for e in entries]
        assert scores == sorted(scores, reverse=True)

    def test_nbest_hypotheses_distinct(self, decoded):
        lattice, _vit, _utt = decoded
        entries = lattice.nbest(5)
        words = [e.words for e in entries]
        assert len(set(words)) == len(words)

    @pytest.mark.slow
    def test_oracle_wer_at_most_onebest(self, decoded):
        lattice, viterbi_result, utt = decoded
        onebest = word_error_rate(utt.words, viterbi_result.words)
        assert lattice.oracle_wer(utt.words, k=10) <= onebest + 1e-9

    def test_lattice_has_nodes_and_edges(self, decoded):
        lattice, _vit, _utt = decoded
        assert lattice.num_nodes > 0
        assert lattice.num_edges > lattice.num_nodes  # alternatives exist

    def test_wider_lattice_beam_keeps_more(self, lattice_task):
        utt = lattice_task.utterances[1]
        config = BeamSearchConfig(beam=12.0)
        narrow = LatticeDecoder(lattice_task.graph, config, lattice_beam=2.0)
        wide = LatticeDecoder(lattice_task.graph, config, lattice_beam=10.0)
        n = narrow.decode(utt.scores)
        w = wide.decode(utt.scores)
        assert w.num_nodes >= n.num_nodes

    def test_invalid_params_rejected(self, small_graph):
        with pytest.raises(ConfigError):
            LatticeDecoder(small_graph, lattice_beam=0.0)
