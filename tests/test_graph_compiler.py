"""Tests for the staged graph compiler and its artifact cache."""

import pytest

from repro.common.errors import ConfigError
from repro.datasets import SyntheticGraphConfig, TaskConfig, generate_task
from repro.datasets.synthetic_graph import generate_kaldi_like_graph
from repro.decoder import BatchDecoder, DecoderConfig, LatticeDecoder, ViterbiDecoder
from repro.gpu import GpuViterbiDecoder
from repro.graph import (
    GraphCache,
    GraphCompiler,
    GraphRecipe,
    compile_graph,
)
from repro.system import StreamingServer
from repro.wfst import count_epsilon_arcs

RECIPE = GraphRecipe.composed(vocab_size=60, corpus_sentences=300, seed=11)


@pytest.fixture(scope="module")
def artifact():
    return GraphCompiler().compile(RECIPE)


class TestRecipe:
    def test_fingerprint_is_stable(self):
        assert RECIPE.fingerprint() == RECIPE.fingerprint()
        clone = GraphRecipe.composed(
            vocab_size=60, corpus_sentences=300, seed=11
        )
        assert clone.fingerprint() == RECIPE.fingerprint()

    @pytest.mark.parametrize("change", [
        {"vocab_size": 61},
        {"corpus_sentences": 301},
        {"seed": 12},
        {"lm_order": 3},
        {"silence_prob": 0.3},
        {"remove_epsilons": True},
        {"arcsort": False},
    ])
    def test_any_field_changes_the_fingerprint(self, change):
        base = dict(vocab_size=60, corpus_sentences=300, seed=11)
        changed = GraphRecipe.composed(**{**base, **change})
        assert changed.fingerprint() != RECIPE.fingerprint()

    def test_round_trips_through_dict(self):
        for recipe in (
            RECIPE,
            GraphRecipe.synthetic_graph(
                SyntheticGraphConfig(num_states=500, seed=3)
            ),
        ):
            clone = GraphRecipe.from_dict(recipe.to_dict())
            assert clone == recipe
            assert clone.fingerprint() == recipe.fingerprint()

    def test_invalid_recipes_rejected(self):
        with pytest.raises(ConfigError):
            GraphRecipe(kind="nonsense")
        with pytest.raises(ConfigError):
            GraphRecipe(kind="synthetic")  # no synthetic config
        with pytest.raises(ConfigError):
            GraphRecipe.composed(lm_order=4)
        with pytest.raises(ConfigError):
            GraphRecipe.composed(
                synthetic=SyntheticGraphConfig(num_states=10)
            )
        with pytest.raises(ConfigError):
            GraphRecipe(
                kind="synthetic",
                synthetic=SyntheticGraphConfig(num_states=10),
                remove_epsilons=True,
            )

    def test_from_dict_rejects_unknown_fields(self):
        payload = RECIPE.to_dict()
        payload["surprise"] = 1
        with pytest.raises(ConfigError):
            GraphRecipe.from_dict(payload)


class TestPipeline:
    def test_pass_sequence_and_stats(self, artifact):
        names = [p.name for p in artifact.passes]
        assert names == [
            "lexicon", "grammar", "compose", "epsilon-check",
            "arcsort", "pack",
        ]
        compose = artifact.passes[2]
        assert compose.states_out > compose.states_in
        assert compose.arcs_out > 0 and compose.eps_out > 0
        pack = artifact.passes[-1]
        assert pack.states_out == artifact.graph.num_states
        assert pack.arcs_out == artifact.graph.num_arcs
        assert all(p.seconds >= 0 for p in artifact.passes)
        assert "pack" in artifact.report()

    def test_matches_legacy_task_construction(self, artifact, small_task):
        # conftest's small_task uses the same vocab/corpus/seed: the
        # compiler is the one true construction path, so the graphs are
        # bit-identical.
        assert artifact.graph.fingerprint() == small_task.graph.fingerprint()

    def test_remove_epsilons_pass(self):
        recipe = GraphRecipe.composed(
            vocab_size=40, corpus_sentences=200, seed=7,
            remove_epsilons=True,
        )
        art = compile_graph(recipe)
        assert [p.name for p in art.passes] == [
            "lexicon", "grammar", "compose", "remove-epsilons",
            "arcsort", "pack",
        ]
        free, _carrying = count_epsilon_arcs(art.graph.to_fst())
        assert free == 0

    def test_unsorted_pack_keeps_epsilon_partition(self):
        recipe = GraphRecipe.composed(
            vocab_size=40, corpus_sentences=200, seed=7, arcsort=False,
        )
        graph = compile_graph(recipe).graph
        for s in range(graph.num_states):
            first, n_non_eps, n_eps = graph.arc_range(s)
            block = graph.arc_ilabel[first:first + n_non_eps + n_eps]
            assert (block[:n_non_eps] != 0).all()
            assert (block[n_non_eps:] == 0).all()

    def test_synthetic_recipe_matches_direct_generation(self):
        config = SyntheticGraphConfig(num_states=800, num_phones=30, seed=5)
        art = compile_graph(GraphRecipe.synthetic_graph(config))
        direct = generate_kaldi_like_graph(config)
        assert art.graph.fingerprint() == direct.fingerprint()
        assert [p.name for p in art.passes] == ["synthesize"]

    def test_artifact_views(self, artifact):
        assert artifact.flat().num_states == artifact.graph.num_states
        sorted_graph = artifact.sorted_graph()
        assert sorted_graph.graph.num_arcs == artifact.graph.num_arcs
        assert artifact.sorted_graph() is sorted_graph  # memoized
        assert artifact.sorted_graph(4).max_direct_arcs == 4


class TestCache:
    def test_memory_hit_shares_the_artifact(self):
        cache = GraphCache()
        a = cache.get(RECIPE)
        b = cache.get(RECIPE)
        assert a is b
        assert cache.compiles == 1 and cache.hits == 1

    def test_disk_round_trip_is_bit_exact(self, tmp_path):
        warm = GraphCache(str(tmp_path))
        compiled = warm.get(RECIPE)
        fresh = GraphCache(str(tmp_path))
        loaded = fresh.get(RECIPE)
        assert fresh.compiles == 0 and fresh.hits == 1
        assert loaded.source == "disk"
        assert loaded.graph.fingerprint() == compiled.graph.fingerprint()
        assert (
            loaded.graph.states_packed == compiled.graph.states_packed
        ).all()
        assert (loaded.graph.arc_weight == compiled.graph.arc_weight).all()
        assert [p.name for p in loaded.passes] == \
            [p.name for p in compiled.passes]

    @pytest.mark.parametrize("corruption", ["garbage", "truncated", "empty"])
    def test_corrupt_bundle_falls_back_to_compile(self, tmp_path, corruption):
        cache = GraphCache(str(tmp_path))
        cache.get(RECIPE)
        path = cache._path(RECIPE.fingerprint())
        if corruption == "garbage":
            payload = b"torn write"
        elif corruption == "truncated":
            payload = open(path, "rb").read()[:100]  # BadZipFile on load
        else:
            payload = b""  # EOFError on load
        with open(path, "wb") as fh:
            fh.write(payload)
        fresh = GraphCache(str(tmp_path))
        artifact = fresh.get(RECIPE)
        assert fresh.compiles == 1
        assert artifact.graph.num_states > 0


class TestWorkloadConsumer:
    def test_memory_workload_compiles_through_the_cache(self):
        from repro.system import make_memory_workload

        cache = GraphCache()
        config = SyntheticGraphConfig(num_states=600, num_phones=20, seed=4)
        a = make_memory_workload(
            num_utterances=1, frames_per_utterance=4,
            graph_config=config, graph_cache=cache,
        )
        b = make_memory_workload(
            num_utterances=1, frames_per_utterance=4,
            graph_config=config, graph_cache=cache,
        )
        assert cache.compiles == 1 and cache.hits == 1
        assert a.graph is b.graph

    def test_memory_workload_accepts_precompiled_graph(self):
        from repro.system import make_memory_workload

        config = SyntheticGraphConfig(num_states=600, num_phones=20, seed=4)
        graph = compile_graph(GraphRecipe.synthetic_graph(config)).graph
        workload = make_memory_workload(
            num_utterances=1, frames_per_utterance=4, graph=graph,
        )
        assert workload.graph is graph
        # Score matrices match the graph's phone inventory.
        assert workload.scores[0].matrix.shape[1] ==             int(graph.arc_ilabel.max()) + 1


class TestDecodeIdentity:
    """Acceptance: decoding a cached graph is word-identical to a fresh
    compile across every engine."""

    def test_all_engines_word_identical(self, tmp_path):
        config = TaskConfig(
            vocab_size=60, corpus_sentences=300, num_utterances=3,
            utterance_words=4, seed=11,
        )
        fresh_task = generate_task(config)
        warm = GraphCache(str(tmp_path))
        generate_task(config, graph_cache=warm)  # populates the disk cache
        cached_task = generate_task(config, graph_cache=GraphCache(str(tmp_path)))
        assert cached_task.artifact.source == "disk"

        scores = [u.scores for u in fresh_task.utterances]
        decoder_config = DecoderConfig(beam=14.0)

        def decode_all(graph):
            outputs = {}
            viterbi = ViterbiDecoder(graph, decoder_config)
            outputs["reference"] = [
                viterbi.decode(s).words for s in scores
            ]
            batch = BatchDecoder(graph, decoder_config)
            outputs["batch"] = [
                r.words for r in batch.decode_batch(scores)
            ]
            lattice = LatticeDecoder(graph, decoder_config)
            outputs["lattice"] = [
                lattice.decode(s).nbest(1)[0].words for s in scores
            ]
            gpu = GpuViterbiDecoder(graph, config=decoder_config)
            outputs["gpu"] = [gpu.decode(s)[0].words for s in scores]
            server = StreamingServer(graph, decoder_config)
            outputs["streaming"] = [
                r.words
                for r in server.decode_streaming(scores, chunk_frames=7)
            ]
            return outputs

        fresh = decode_all(fresh_task.graph)
        cached = decode_all(cached_task.graph)
        assert fresh == cached

    def test_task_axes_decode(self):
        """The new TaskConfig graph axes produce decodable graphs."""
        for change in (
            {"lm_order": 3},
            {"remove_epsilons": True},
            {"arcsort": False},
        ):
            task = generate_task(TaskConfig(
                vocab_size=40, corpus_sentences=200, num_utterances=2,
                utterance_words=3, seed=9, **change,
            ))
            decoder = ViterbiDecoder(task.graph, DecoderConfig(beam=16.0))
            for utt in task.utterances:
                result = decoder.decode(utt.scores)
                assert result.words  # decoded something
