"""Cross-backend differential suite for the kernel dispatch layer.

The compiled (numba) backend of :mod:`repro.decoder.backends` is a pure
speed knob: every array backend must produce word-identical output,
bit-identical path scores, identical order-independent counters and an
identical observer event stream for every graph, engine and pruning
strategy.  This suite is the gate on that contract:

* dispatch behaviour -- explicit selection, ``REPRO_KERNEL_BACKEND``,
  graceful :class:`BackendFallbackWarning` fallback when numba is not
  installed (never a crash);
* randomized differential decoding over :class:`GraphRecipe` axes
  (composed lexicon-times-LM graphs and Kaldi-statistics synthetic
  graphs), ragged fused session fleets, and all three pruning
  strategies, numpy vs numba;
* full observer event-stream identity numpy vs numba on the vectorized
  kernel, and normalized prune/expand agreement against the scalar
  :class:`ReferenceKernel` oracle.

Numba-dependent tests skip cleanly when the ``[compiled]`` extra is not
installed; everything else runs on the portable numpy backend.
"""

import warnings

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.acoustic.scorer import AcousticScores
from repro.datasets import SyntheticGraphConfig
from repro.decoder import (
    BackendFallbackWarning,
    BatchDecoder,
    ClosureEvent,
    DecoderConfig,
    ExpandEvent,
    KernelObserver,
    PruneEvent,
    ReferenceKernel,
    SearchKernel,
    advance_sessions,
    available_backends,
    numba_available,
    resolve_backend,
)
from repro.decoder.backends import (
    BACKEND_ENV_VAR,
    KERNEL_BACKENDS,
    KernelBackend,
)
from repro.decoder.backends.numpy_backend import NumpyBackend
from repro.graph import GraphCompiler, GraphRecipe

requires_numba = pytest.mark.skipif(
    not numba_available(), reason="numba not installed ([compiled] extra)"
)

#: The three pruning strategies of the kernel's strategy layer.
CONFIGS = {
    "beam": dict(beam=6.0),
    "histogram": dict(beam=8.0, max_active=60),
    "adaptive": dict(
        beam=5.0, pruning="adaptive", target_active=50, min_beam=2.0
    ),
}

#: Graph axes: composed (lexicon o LM) and synthetic (Kaldi statistics).
RECIPES = {
    "composed": GraphRecipe.composed(
        vocab_size=60, corpus_sentences=300, seed=11
    ),
    "synthetic": GraphRecipe.synthetic_graph(
        SyntheticGraphConfig(num_states=900, num_phones=30, seed=21)
    ),
}


@pytest.fixture(scope="module", params=sorted(RECIPES))
def graph(request):
    return GraphCompiler().compile(RECIPES[request.param]).graph


def _config(strategy, backend):
    return DecoderConfig(backend=backend, **CONFIGS[strategy])


def _scores_fleet(graph, seed, frame_counts):
    """A ragged fleet of random utterances sized for ``graph``."""
    width = BatchDecoder(graph).min_score_width
    rng = np.random.default_rng(seed)
    return [
        AcousticScores(rng.normal(loc=-2.0, scale=2.0, size=(frames, width)))
        for frames in frame_counts
    ]


def _core_counters(stats):
    return (
        stats.frames,
        stats.tokens_pruned,
        stats.states_expanded,
        stats.arcs_processed,
        stats.tokens_created,
        tuple(stats.active_tokens_per_frame),
        tuple(sorted(stats.visited_state_degrees)),
    )


# ----------------------------------------------------------------------
# Dispatch layer
# ----------------------------------------------------------------------
class TestDispatch:
    def test_registry_and_default(self):
        assert KERNEL_BACKENDS == ("auto", "numpy", "numba")
        assert "numpy" in available_backends()
        assert resolve_backend("numpy").name == "numpy"

    def test_auto_without_env_is_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend("auto").name == "numpy"
        assert resolve_backend().name == "numpy"

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert resolve_backend("auto").name == "numpy"
        # Explicit config beats the environment.
        monkeypatch.setenv(BACKEND_ENV_VAR, "numba")
        assert resolve_backend("numpy").name == "numpy"

    def test_unknown_names_raise(self, monkeypatch):
        with pytest.raises(ConfigError):
            resolve_backend("fortran")
        with pytest.raises(ConfigError):
            DecoderConfig(backend="fortran")
        monkeypatch.setenv(BACKEND_ENV_VAR, "fortran")
        with pytest.raises(ConfigError):
            resolve_backend("auto")

    def test_config_flows_to_engines(self):
        recipe = RECIPES["synthetic"]
        compiled = GraphCompiler().compile(recipe).graph
        decoder = BatchDecoder(compiled, DecoderConfig(backend="numpy"))
        assert decoder.backend_name == "numpy"
        assert decoder.kernel.backend_name == "numpy"

    def test_abstract_backend_is_abstract(self):
        backend = KernelBackend()
        empty = np.empty(0, dtype=np.int64)
        with pytest.raises(NotImplementedError):
            backend.csr_gather(empty, empty)
        with pytest.raises(NotImplementedError):
            backend.segment_best(empty, np.empty(0))

    @pytest.mark.skipif(
        numba_available(), reason="covers the numba-missing fallback"
    )
    def test_missing_numba_warns_and_falls_back(self):
        with pytest.warns(BackendFallbackWarning, match="compiled"):
            backend = resolve_backend("numba")
        assert backend.name == "numpy"
        assert isinstance(backend, NumpyBackend)
        assert available_backends() == ("numpy",)
        # The fallback flows through configs the same way: a decoder
        # asking for numba still comes up, on numpy.
        with pytest.warns(BackendFallbackWarning):
            kernel = SearchKernel(
                GraphCompiler().compile(RECIPES["synthetic"]).graph,
                DecoderConfig(backend="numba"),
            )
        assert kernel.backend_name == "numpy"

    @requires_numba
    def test_numba_resolves_when_installed(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            backend = resolve_backend("numba")
        assert backend.name == "numba"
        assert available_backends() == ("numpy", "numba")


# ----------------------------------------------------------------------
# Randomized differential decoding, numpy vs numba
# ----------------------------------------------------------------------
@requires_numba
@pytest.mark.parametrize("strategy", sorted(CONFIGS))
class TestBackendsDecodeIdentically:
    def test_batch_words_scores_counters(self, graph, strategy):
        fleet = _scores_fleet(graph, seed=7, frame_counts=(6, 9, 4, 7))
        base = BatchDecoder(graph, _config(strategy, "numpy"))
        compiled = BatchDecoder(graph, _config(strategy, "numba"))
        assert compiled.backend_name == "numba"

        for ref, jit in zip(
            base.decode_batch(fleet), compiled.decode_batch(fleet)
        ):
            assert jit.words == ref.words
            assert jit.log_likelihood == ref.log_likelihood  # bitwise
            assert jit.reached_final == ref.reached_final
            assert _core_counters(jit.stats) == _core_counters(ref.stats)

    def test_ragged_fused_sweep(self, graph, strategy):
        """A live ragged fleet through ``advance_sessions``, per backend."""
        fleet = _scores_fleet(graph, seed=13, frame_counts=(5, 8, 3))
        results = {}
        for backend in ("numpy", "numba"):
            decoder = BatchDecoder(graph, _config(strategy, backend))
            sessions = [decoder.open_session() for _ in fleet]
            max_frames = max(s.num_frames for s in fleet)
            for frame in range(max_frames):
                advance_sessions([
                    (session, scores.frame(frame))
                    for session, scores in zip(sessions, fleet)
                    if frame < scores.num_frames
                ])
            results[backend] = [s.finalize() for s in sessions]
        for ref, jit in zip(results["numpy"], results["numba"]):
            assert jit.words == ref.words
            assert jit.log_likelihood == ref.log_likelihood
            assert _core_counters(jit.stats) == _core_counters(ref.stats)

    def test_chunked_sessions_match_one_shot(self, graph, strategy):
        fleet = _scores_fleet(graph, seed=29, frame_counts=(8,))
        matrix = fleet[0].matrix
        decoder = BatchDecoder(graph, _config(strategy, "numba"))
        one_shot = decoder.decode(fleet[0])
        session = decoder.open_session()
        session.push(matrix[:3])
        session.push(matrix[3:])
        streamed = session.finalize()
        assert streamed.words == one_shot.words
        assert streamed.log_likelihood == one_shot.log_likelihood


# ----------------------------------------------------------------------
# Observer event streams
# ----------------------------------------------------------------------
class _Recorder(KernelObserver):
    """Records every event as a fully normalized comparable tuple."""

    def __init__(self):
        self.events = []

    def on_prune(self, event: PruneEvent) -> None:
        self.events.append((
            "prune", event.frame,
            tuple(event.walk_states), tuple(event.survivor_states),
            tuple(event.survivor_read_idx), event.threshold,
            event.beam_pruned, event.cap_pruned,
        ))

    def on_expand(self, event: ExpandEvent) -> None:
        self.events.append((
            "expand", event.frame, tuple(event.frame_scores),
            tuple(event.states), tuple(event.first), tuple(event.n_arcs),
            tuple(event.read_idx), tuple(event.arc_idx),
            tuple(event.arc_dest),
            None if event.arc_src is None else tuple(event.arc_src),
            None if event.arc_scores is None else tuple(event.arc_scores),
        ))

    def on_closure(self, event: ClosureEvent) -> None:
        self.events.append((
            "closure", event.pass_index, event.round_index,
            tuple(event.states), tuple(event.first), tuple(event.n_arcs),
            None if event.src is None else tuple(event.src),
            tuple(event.arc_idx),
        ))


def _kernel_events(graph, config, scores):
    kernel = SearchKernel(graph, config)
    recorder = _Recorder()
    frontier = kernel.init_frontier([recorder])
    for frame, row in enumerate(scores.matrix):
        kernel.step_frame(frontier, frame, row)
        frontier.num_frames += 1
    kernel.finalize(frontier)
    return recorder.events


@requires_numba
@pytest.mark.parametrize("strategy", sorted(CONFIGS))
def test_observer_streams_are_byte_identical(graph, strategy):
    """numpy vs numba: the *entire* event stream, field for field."""
    scores = _scores_fleet(graph, seed=37, frame_counts=(7,))[0]
    base = _kernel_events(graph, _config(strategy, "numpy"), scores)
    jit = _kernel_events(graph, _config(strategy, "numba"), scores)
    assert len(base) > 0
    assert jit == base


@pytest.mark.parametrize(
    "backend",
    ["numpy", pytest.param("numba", marks=requires_numba)],
)
def test_prune_expand_summaries_match_reference(graph, backend):
    """Vectorized backends vs the scalar oracle, normalized.

    Closure events and the epsilon arc sets are discipline
    approximations (FIFO passes vs relaxation rounds), so the oracle
    comparison covers the prune/expand stream only: survivor *sets*,
    thresholds, pruned counts, and the expanded arc *sets*.  Beam-only
    pruning keeps survivor sets unambiguous (no cap ties).
    """
    scores = _scores_fleet(graph, seed=41, frame_counts=(6,))[0]
    config = DecoderConfig(beam=6.0, backend=backend)

    vec = _kernel_events(graph, config, scores)
    oracle = _Recorder()
    ReferenceKernel(graph, config).decode(scores, [oracle])

    def summarize(events):
        out = []
        for event in events:
            if event[0] == "prune":
                _, frame, _, survivors, _, threshold, beam, cap = event
                out.append((
                    "prune", frame, tuple(sorted(survivors)),
                    threshold, beam, cap,
                ))
            elif event[0] == "expand":
                out.append((
                    "expand", event[1], tuple(sorted(event[7])),
                ))
        return out

    assert summarize(vec) == summarize(oracle.events)


# ----------------------------------------------------------------------
# Backend primitives, op by op
# ----------------------------------------------------------------------
@requires_numba
class TestPrimitivesAgree:
    def _backends(self):
        return resolve_backend("numpy"), resolve_backend("numba")

    def test_csr_gather(self):
        rng = np.random.default_rng(3)
        first = rng.integers(0, 500, size=40).astype(np.int64)
        counts = rng.integers(0, 7, size=40).astype(np.int64)
        base, jit = self._backends()
        for out_base, out_jit in zip(
            base.csr_gather(first, counts), jit.csr_gather(first, counts)
        ):
            np.testing.assert_array_equal(out_jit, out_base)
            assert out_jit.dtype == out_base.dtype

    def test_segment_best_first_wins_on_ties(self):
        keys = np.array([4, 2, 4, 2, 9, 4], dtype=np.int64)
        scores = np.array([1.0, 3.0, 1.0, 3.0, -2.0, 1.0])
        base, jit = self._backends()
        uniq_b, win_b = base.segment_best(keys, scores)
        uniq_j, win_j = jit.segment_best(keys, scores)
        np.testing.assert_array_equal(uniq_j, uniq_b)
        np.testing.assert_array_equal(win_j, win_b)
        # Earliest candidate wins ties -- positions 1 (key 2), 0 (key 4).
        np.testing.assert_array_equal(uniq_b, [2, 4, 9])
        np.testing.assert_array_equal(win_b, [1, 0, 4])

    def test_segment_best_signed_zero_ties(self):
        keys = np.array([5, 5, 5], dtype=np.int64)
        scores = np.array([-0.0, 0.0, -1.0])
        base, jit = self._backends()
        uniq_b, win_b = base.segment_best(keys, scores)
        uniq_j, win_j = jit.segment_best(keys, scores)
        np.testing.assert_array_equal(uniq_j, uniq_b)
        np.testing.assert_array_equal(win_j, win_b)

    def test_segment_best_random(self):
        rng = np.random.default_rng(17)
        keys = rng.integers(0, 50, size=400).astype(np.int64)
        # Quantized scores force plenty of exact ties.
        scores = np.round(rng.normal(size=400) * 4) / 4
        base, jit = self._backends()
        uniq_b, win_b = base.segment_best(keys, scores)
        uniq_j, win_j = jit.segment_best(keys, scores)
        np.testing.assert_array_equal(uniq_j, uniq_b)
        np.testing.assert_array_equal(win_j, win_b)
