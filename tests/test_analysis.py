"""Tests for the invariant linter (repro.analysis).

Each rule is exercised against fixture mini-trees written into tmp_path:
the same rules and configuration that run over the real repo run over a
tree that deliberately seeds one violation, and the engine must exit
non-zero; the cleaned variant must exit zero.  The real tree's own
cleanliness is asserted at the end (that is the CI gate).
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import AnalysisConfig, run_analysis
from repro.analysis.config import FingerprintSpec, VersionGuardSpec
from repro.analysis.engine import main, update_version_guard
from repro.common.errors import AnalysisError

REPO_ROOT = Path(__file__).resolve().parent.parent


def write(root: Path, rel: str, source: str) -> None:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")


def rules_hit(report):
    return {v.rule for v in report.violations}


@pytest.fixture
def mini(tmp_path):
    """A minimal clean tree the default config accepts."""
    write(tmp_path, "src/repro/common/errors.py", """
        class ReproError(Exception):
            pass

        class ConfigError(ReproError):
            pass
        """)
    return tmp_path


# ----------------------------------------------------------------------
# REP001 determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    HOT = "src/repro/decoder/kernel.py"

    def check(self, root):
        return run_analysis(root, config=AnalysisConfig.default(),
                            use_baseline=False)

    def test_random_import_flagged(self, mini):
        write(mini, self.HOT, "import random\n")
        assert "REP001" in rules_hit(self.check(mini))

    def test_time_import_flagged(self, mini):
        write(mini, self.HOT, "from time import monotonic\n")
        assert "REP001" in rules_hit(self.check(mini))

    def test_numpy_random_attribute_flagged(self, mini):
        write(mini, self.HOT, """
            import numpy as np

            def f():
                return np.random.default_rng(0)
            """)
        assert "REP001" in rules_hit(self.check(mini))

    def test_os_environ_flagged(self, mini):
        write(mini, self.HOT, """
            import os

            def f():
                return os.environ.get("HOME")
            """)
        assert "REP001" in rules_hit(self.check(mini))

    def test_set_iteration_flagged(self, mini):
        write(mini, self.HOT, """
            def f(states):
                live = set(states)
                return [s for s in live]
            """)
        assert "REP001" in rules_hit(self.check(mini))

    def test_sorted_set_iteration_ok(self, mini):
        write(mini, self.HOT, """
            def f(states):
                live = sorted(set(states))
                return [s for s in live]
            """)
        assert "REP001" not in rules_hit(self.check(mini))

    def test_cold_module_not_checked(self, mini):
        write(mini, "src/repro/frontend/other.py", "import random\n")
        assert "REP001" not in rules_hit(self.check(mini))

    def test_suppression_comment(self, mini):
        write(mini, self.HOT, (
            "import random  # repro-lint: disable=REP001\n"
        ))
        report = self.check(mini)
        assert "REP001" not in rules_hit(report)
        assert report.suppressed == 1


# ----------------------------------------------------------------------
# REP002 typed errors
# ----------------------------------------------------------------------
class TestTypedErrors:
    def check(self, root):
        return run_analysis(root, config=AnalysisConfig.default(),
                            use_baseline=False)

    def test_untyped_raise_flagged(self, mini):
        write(mini, "src/repro/mod.py", """
            def f():
                raise ValueError("nope")
            """)
        assert "REP002" in rules_hit(self.check(mini))

    def test_taxonomy_raise_ok(self, mini):
        write(mini, "src/repro/mod.py", """
            from repro.common.errors import ConfigError

            def f():
                raise ConfigError("nope")
            """)
        assert "REP002" not in rules_hit(self.check(mini))

    def test_not_implemented_ok(self, mini):
        write(mini, "src/repro/mod.py", """
            def f():
                raise NotImplementedError
            """)
        assert "REP002" not in rules_hit(self.check(mini))

    def test_bare_except_flagged(self, mini):
        write(mini, "src/repro/mod.py", """
            def f():
                try:
                    return 1
                except:
                    return 0
            """)
        assert "REP002" in rules_hit(self.check(mini))

    def test_broad_except_without_reraise_flagged(self, mini):
        write(mini, "src/repro/mod.py", """
            def f():
                try:
                    return 1
                except Exception:
                    return 0
            """)
        assert "REP002" in rules_hit(self.check(mini))

    def test_broad_except_with_reraise_ok(self, mini):
        write(mini, "src/repro/mod.py", """
            def f(log):
                try:
                    return 1
                except Exception:
                    log("failed")
                    raise
            """)
        assert "REP002" not in rules_hit(self.check(mini))

    def test_nested_function_raise_is_not_a_reraise(self, mini):
        write(mini, "src/repro/mod.py", """
            def f():
                try:
                    return 1
                except Exception:
                    def g():
                        raise
                    return g
            """)
        assert "REP002" in rules_hit(self.check(mini))


# ----------------------------------------------------------------------
# REP003 fingerprint completeness + version guard
# ----------------------------------------------------------------------
class TestFingerprint:
    CLS = "src/repro/pkg/cfg.py"

    def config(self, **kwargs):
        return AnalysisConfig(
            fingerprint_specs=(FingerprintSpec(
                cls=f"{self.CLS}::DemoConfig",
                anchors=(f"{self.CLS}::DemoConfig.fingerprint",),
                **kwargs,
            ),),
        )

    def test_unreachable_field_flagged(self, mini):
        write(mini, self.CLS, """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class DemoConfig:
                used: int = 1
                dead_knob: int = 2

                def fingerprint(self):
                    return str(self.used)
            """)
        report = run_analysis(mini, config=self.config(),
                              use_baseline=False)
        assert any(
            v.rule == "REP003" and "dead_knob" in v.message
            for v in report.violations
        )

    def test_property_expansion_covers_field(self, mini):
        write(mini, self.CLS, """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class DemoConfig:
                size_bytes: int = 64
                line_bytes: int = 8

                @property
                def num_lines(self):
                    return self.size_bytes // self.line_bytes

                def fingerprint(self):
                    return str(self.num_lines)
            """)
        report = run_analysis(mini, config=self.config(),
                              use_baseline=False)
        assert "REP003" not in rules_hit(report)

    def test_allow_needs_justification(self, mini):
        write(mini, self.CLS, """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class DemoConfig:
                used: int = 1
                noted: int = 2

                def fingerprint(self):
                    return str(self.used)
            """)
        justified = run_analysis(
            mini, config=self.config(allow={"noted": "docs-only field"}),
            use_baseline=False,
        )
        assert "REP003" not in rules_hit(justified)
        unjustified = run_analysis(
            mini, config=self.config(allow={"noted": ""}),
            use_baseline=False,
        )
        assert any(
            "without a written justification" in v.message
            for v in unjustified.violations
        )

    def test_asdict_counts_as_full_coverage(self, mini):
        write(mini, self.CLS, """
            import dataclasses
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class DemoConfig:
                a: int = 1
                b: int = 2

                def fingerprint(self):
                    return str(dataclasses.asdict(self))
            """)
        report = run_analysis(mini, config=self.config(),
                              use_baseline=False)
        assert "REP003" not in rules_hit(report)

    def guard_config(self):
        return AnalysisConfig(
            version_guards=(VersionGuardSpec(
                symbol="FMT_VERSION",
                module="src/repro/pkg/fmt.py",
                guarded=("src/repro/pkg/fmt.py", "src/repro/pkg/impl.py"),
            ),),
        )

    def test_version_guard_catches_drift(self, mini):
        write(mini, "src/repro/pkg/fmt.py", "FMT_VERSION = 1\n")
        write(mini, "src/repro/pkg/impl.py", "X = 1\n")
        config = self.guard_config()

        # Uninitialised guard is itself a violation.
        report = run_analysis(mini, config=config, use_baseline=False)
        assert any("not initialised" in v.message
                   for v in report.violations)

        update_version_guard(mini, config)
        report = run_analysis(mini, config=config, use_baseline=False)
        assert "REP003" not in rules_hit(report)

        # Guarded source drifts without a bump -> violation...
        write(mini, "src/repro/pkg/impl.py", "X = 2\n")
        report = run_analysis(mini, config=config, use_baseline=False)
        assert any("without a version bump" in v.message
                   for v in report.violations)

        # ...and bumping the constant asks for re-attestation.
        write(mini, "src/repro/pkg/fmt.py", "FMT_VERSION = 2\n")
        report = run_analysis(mini, config=config, use_baseline=False)
        assert any("re-attest" in v.message for v in report.violations)
        update_version_guard(mini, config)
        report = run_analysis(mini, config=config, use_baseline=False)
        assert "REP003" not in rules_hit(report)


# ----------------------------------------------------------------------
# REP004 argument purity
# ----------------------------------------------------------------------
class TestArgPurity:
    PURE = "src/repro/wfst/ops.py"

    def check(self, root):
        return run_analysis(root, config=AnalysisConfig.default(),
                            use_baseline=False)

    def test_attribute_assignment_flagged(self, mini):
        write(mini, self.PURE, """
            def bad(fst):
                fst.start = 0
                return fst
            """)
        assert "REP004" in rules_hit(self.check(mini))

    def test_subscript_assignment_flagged(self, mini):
        write(mini, self.PURE, """
            def bad(weights):
                weights[0] = 0.0
                return weights
            """)
        assert "REP004" in rules_hit(self.check(mini))

    def test_mutating_method_flagged(self, mini):
        write(mini, self.PURE, """
            def bad(fst, arc):
                fst.add_arc(0, arc)
            """)
        assert "REP004" in rules_hit(self.check(mini))

    def test_closure_mutation_flagged(self, mini):
        write(mini, self.PURE, """
            def outer(fst):
                def inner():
                    fst.states.append(0)
                return inner
            """)
        assert "REP004" in rules_hit(self.check(mini))

    def test_pure_copy_ok(self, mini):
        write(mini, self.PURE, """
            def good(fst):
                out = fst.copy()
                out.start = 0
                out.states.append(1)
                return out
            """)
        assert "REP004" not in rules_hit(self.check(mini))

    def test_local_rebinding_ok(self, mini):
        write(mini, self.PURE, """
            def good(n):
                n = n + 1
                return n
            """)
        assert "REP004" not in rules_hit(self.check(mini))

    def test_self_mutation_ok(self, mini):
        write(mini, self.PURE, """
            class Builder:
                def add(self, x):
                    self.items.append(x)
            """)
        assert "REP004" not in rules_hit(self.check(mini))

    def test_module_outside_scope_not_checked(self, mini):
        write(mini, "src/repro/other.py", """
            def bad(fst):
                fst.start = 0
            """)
        assert "REP004" not in rules_hit(self.check(mini))


# ----------------------------------------------------------------------
# REP005 validation completeness
# ----------------------------------------------------------------------
class TestValidationCompleteness:
    MOD = "src/repro/pkg/cfg.py"

    def check(self, root):
        return run_analysis(root, config=AnalysisConfig.default(),
                            use_baseline=False)

    def test_unchecked_field_flagged(self, mini):
        write(mini, self.MOD, """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class DemoConfig:
                checked: int = 1
                unchecked: float = 0.5

                def __post_init__(self):
                    if self.checked < 1:
                        raise ValueError("checked must be >= 1")
            """)
        report = self.check(mini)
        assert any(
            v.rule == "REP005" and "unchecked" in v.message
            for v in report.violations
        )

    def test_fully_checked_ok(self, mini):
        write(mini, self.MOD, """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class DemoConfig:
                a: int = 1
                b: float = 0.5

                def __post_init__(self):
                    if self.a < 1 or not 0 <= self.b <= 1:
                        raise ValueError("bad config")
            """)
        assert "REP005" not in rules_hit(self.check(mini))

    def test_bool_and_nested_config_exempt(self, mini):
        write(mini, self.MOD, """
            from dataclasses import dataclass
            from typing import Optional

            @dataclass(frozen=True)
            class InnerConfig:
                n: int = 1

                def __post_init__(self):
                    if self.n < 1:
                        raise ValueError("n")

            @dataclass(frozen=True)
            class DemoConfig:
                n: int = 1
                flag: bool = False
                inner: Optional[InnerConfig] = None

                def __post_init__(self):
                    if self.n < 1:
                        raise ValueError("n")
            """)
        assert "REP005" not in rules_hit(self.check(mini))

    def test_validation_via_property_counts(self, mini):
        write(mini, self.MOD, """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class DemoConfig:
                max_beam: int = 0
                fallback: int = 8

                @property
                def resolved_max_beam(self):
                    return self.max_beam or self.fallback

                def __post_init__(self):
                    if self.resolved_max_beam < 1:
                        raise ValueError("beam")
            """)
        assert "REP005" not in rules_hit(self.check(mini))

    def test_dataclass_without_validator_ignored(self, mini):
        write(mini, self.MOD, """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class PlainConfig:
                a: int = 1
                b: int = 2
            """)
        assert "REP005" not in rules_hit(self.check(mini))


# ----------------------------------------------------------------------
# Engine behaviour: baseline, CLI exit codes, error handling
# ----------------------------------------------------------------------
class TestEngine:
    def test_baseline_masks_accepted_violations(self, mini):
        write(mini, "src/repro/mod.py", """
            def f():
                raise ValueError("nope")
            """)
        config = AnalysisConfig.default()
        dirty = run_analysis(mini, config=config, use_baseline=False)
        assert dirty.violations

        baseline = [
            {"rule": v.rule, "path": v.path, "message": v.message}
            for v in dirty.violations
        ]
        path = mini / config.baseline_path
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(baseline))

        masked = run_analysis(mini, config=config, use_baseline=True)
        assert not masked.violations
        assert masked.baselined == len(baseline)

        # Baseline keys by content, so the entry survives line churn.
        write(mini, "src/repro/mod.py", """
            # moved down a few lines
            def f():
                raise ValueError("nope")
            """)
        assert not run_analysis(mini, config=config).violations

    def test_corrupt_baseline_is_analysis_error(self, mini):
        config = AnalysisConfig.default()
        path = mini / config.baseline_path
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{not json")
        with pytest.raises(AnalysisError):
            run_analysis(mini, config=config)

    def test_skip_file_comment(self, mini):
        write(mini, "src/repro/mod.py", """
            # repro-lint: skip-file
            def f():
                raise ValueError("nope")
            """)
        report = run_analysis(mini, config=AnalysisConfig.default(),
                              use_baseline=False)
        assert not report.violations
        assert report.suppressed == 1

    def test_main_exit_codes(self, mini, capsys):
        write(mini, "src/repro/decoder/kernel.py", "import random\n")
        assert main(["--root", str(mini)]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out
        (mini / "src/repro/decoder/kernel.py").write_text("X = 1\n")
        assert main(["--root", str(mini)]) == 0

    def test_main_json_format(self, mini, capsys):
        write(mini, "src/repro/decoder/kernel.py", "import random\n")
        assert main(["--root", str(mini), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["violations"][0]["rule"] == "REP001"
        assert payload["rules_run"] == [
            "REP001", "REP002", "REP003", "REP004", "REP005",
        ]

    def test_write_baseline_roundtrip(self, mini, capsys):
        write(mini, "src/repro/mod.py", """
            def f():
                raise ValueError("nope")
            """)
        root = str(mini)
        assert main(["--root", root]) == 1
        capsys.readouterr()
        assert main(["--root", root, "--write-baseline"]) == 0
        assert main(["--root", root]) == 0
        assert main(["--root", root, "--no-baseline"]) == 1

    def test_paths_narrow_per_file_rules(self, mini):
        write(mini, "src/repro/a.py", """
            def f():
                raise ValueError("a")
            """)
        write(mini, "src/repro/b.py", """
            def f():
                raise ValueError("b")
            """)
        report = run_analysis(mini, paths=["src/repro/a.py"],
                              config=AnalysisConfig.default(),
                              use_baseline=False)
        assert {v.path for v in report.violations} == {"src/repro/a.py"}


# ----------------------------------------------------------------------
# The real tree is the fixture of record: it must be clean.
# ----------------------------------------------------------------------
class TestRealTree:
    def test_repo_is_clean(self):
        report = run_analysis(REPO_ROOT, config=AnalysisConfig.default())
        rendered = "\n".join(v.render() for v in report.violations)
        assert report.ok, f"repro-lint violations:\n{rendered}"

    def test_baseline_is_empty(self):
        baseline = json.loads(
            (REPO_ROOT / "src/repro/analysis/baseline.json").read_text()
        )
        assert baseline == []

    def test_version_guard_is_current(self):
        # update_version_guard over the committed tree must be a no-op;
        # if this fails, a fingerprinted module changed without the
        # guard being re-attested (CI would also fail repro-lint).
        config = AnalysisConfig.default()
        from repro.analysis.rules.fingerprint import compute_guard_state
        state = compute_guard_state(REPO_ROOT, config.version_guards)
        committed = json.loads(
            (REPO_ROOT / config.version_guard_path).read_text()
        )
        assert state == committed
