"""Tests for the accelerator configuration (Table I fidelity)."""

import pytest

from repro.common.errors import ConfigError
from repro.accel import AcceleratorConfig
from repro.accel.config import CacheConfig, HashConfig


class TestTable1Defaults:
    """Every row of the paper's Table I."""

    def test_technology_and_frequency(self, table1_config):
        assert table1_config.technology_nm == 28
        assert table1_config.frequency_hz == pytest.approx(600e6)

    def test_state_cache(self, table1_config):
        c = table1_config.state_cache
        assert (c.size_bytes, c.assoc, c.line_bytes) == (512 * 1024, 4, 64)

    def test_arc_cache(self, table1_config):
        c = table1_config.arc_cache
        assert (c.size_bytes, c.assoc, c.line_bytes) == (1024 * 1024, 4, 64)

    def test_token_cache(self, table1_config):
        c = table1_config.token_cache
        assert (c.size_bytes, c.assoc, c.line_bytes) == (512 * 1024, 2, 64)

    def test_acoustic_buffer(self, table1_config):
        assert table1_config.acoustic_buffer_bytes == 64 * 1024

    def test_hash_table(self, table1_config):
        h = table1_config.hash_table
        assert h.num_entries == 32 * 1024
        assert h.size_bytes == 768 * 1024  # 24 bytes/entry

    def test_memory_controller(self, table1_config):
        assert table1_config.mem_max_inflight == 32
        assert table1_config.mem_latency_cycles == 50  # 83 ns at 600 MHz

    def test_issuer_inflight_limits(self, table1_config):
        assert table1_config.state_issuer_inflight == 8
        assert table1_config.arc_issuer_inflight == 8
        assert table1_config.token_issuer_inflight == 32
        assert table1_config.acoustic_issuer_inflight == 1

    def test_likelihood_evaluation_unit(self, table1_config):
        assert table1_config.fp_adders == 4
        assert table1_config.fp_comparators == 2

    def test_memory_latency_in_ns(self, table1_config):
        ns = table1_config.mem_latency_cycles / table1_config.frequency_hz * 1e9
        assert ns == pytest.approx(83.3, abs=0.5)


class TestTechniqueToggles:
    def test_base_has_no_techniques(self, table1_config):
        assert not table1_config.prefetch_enabled
        assert not table1_config.state_direct_enabled

    def test_with_prefetch(self, table1_config):
        c = table1_config.with_prefetch()
        assert c.prefetch_enabled and not c.state_direct_enabled
        assert c.arc_issue_window == 64

    def test_with_state_direct(self, table1_config):
        c = table1_config.with_state_direct()
        assert c.state_direct_enabled and not c.prefetch_enabled
        assert c.state_direct_max_arcs == 16  # paper, Section IV-B

    def test_with_both(self, table1_config):
        c = table1_config.with_both()
        assert c.prefetch_enabled and c.state_direct_enabled

    def test_base_arc_window_is_issuer_depth(self, table1_config):
        assert table1_config.arc_issue_window == 8


class TestScaling:
    def test_scaled_shrinks_caches(self, table1_config):
        s = table1_config.scaled(1 / 8)
        assert s.arc_cache.size_bytes == 128 * 1024
        assert s.state_cache.size_bytes == 64 * 1024

    def test_scaled_preserves_geometry(self, table1_config):
        s = table1_config.scaled(1 / 8)
        assert s.arc_cache.num_sets > 0  # divisibility maintained

    def test_invalid_scale_rejected(self, table1_config):
        with pytest.raises(ConfigError):
            table1_config.scaled(0)


class TestValidation:
    def test_bad_cache_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=-1, assoc=1)

    def test_zero_cache_size_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=0, assoc=1)

    def test_bad_hash_rejected(self):
        with pytest.raises(ConfigError):
            HashConfig(num_entries=0)

    def test_bad_hash_entry_bytes_rejected(self):
        with pytest.raises(ConfigError):
            HashConfig(entry_bytes=0)

    def test_bad_frequency_rejected(self):
        with pytest.raises(ConfigError):
            AcceleratorConfig(frequency_hz=0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"technology_nm": 0},
            {"acoustic_buffer_bytes": 0},
            {"acoustic_buffer_bytes": -1},
            {"mem_latency_cycles": 0},
            {"mem_max_inflight": 0},
            {"mem_issue_interval": 0},
            {"state_issuer_inflight": 0},
            {"arc_issuer_inflight": -1},
            {"token_issuer_inflight": 0},
            {"acoustic_issuer_inflight": 0},
            {"fp_adders": 0},
            {"fp_comparators": 0},
            {"prefetch_fifo_entries": 0},
            {"state_direct_max_arcs": 0},
            {"state_direct_max_arcs": -3},
            {"frame_overhead_cycles": -1},
        ],
    )
    def test_out_of_range_fields_rejected(self, kwargs):
        """Every knob raises a clear ConfigError at construction (no
        silently broken simulator), mirroring the StreamConfig fix."""
        with pytest.raises(ConfigError):
            AcceleratorConfig(**kwargs)

    def test_error_messages_name_the_problem(self):
        with pytest.raises(ConfigError, match="comparator"):
            AcceleratorConfig(state_direct_max_arcs=0)
        with pytest.raises(ConfigError, match="in-flight"):
            AcceleratorConfig(mem_max_inflight=0)
        with pytest.raises(ConfigError, match="Acoustic"):
            AcceleratorConfig(acoustic_buffer_bytes=-5)
