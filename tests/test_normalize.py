"""Tests for CMVN and frame splicing."""

import numpy as np
import pytest
from hypothesis import assume, given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.common.errors import ConfigError
from repro.frontend import cmvn, splice

feature_matrices = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(2, 20), st.integers(1, 8)),
    elements=st.floats(-100, 100),
)


class TestCmvn:
    def test_zero_mean(self):
        rng = np.random.default_rng(0)
        out = cmvn(rng.normal(5.0, 3.0, size=(50, 4)))
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-9)

    def test_unit_variance(self):
        rng = np.random.default_rng(1)
        out = cmvn(rng.normal(5.0, 3.0, size=(200, 4)))
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-6)

    def test_mean_only(self):
        rng = np.random.default_rng(2)
        feats = rng.normal(2.0, 7.0, size=(100, 3))
        out = cmvn(feats, variance=False)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(out.std(axis=0), feats.std(axis=0))

    def test_constant_dimension_safe(self):
        feats = np.ones((10, 2))
        out = cmvn(feats)
        assert np.isfinite(out).all()

    @given(feature_matrices)
    def test_idempotent_on_normalised(self, feats):
        # The property holds away from the variance floor (1e-6), where
        # near-constant dimensions are deliberately left unscaled.
        assume(float(feats.std(axis=0).min()) > 1e-3)
        once = cmvn(feats)
        twice = cmvn(once)
        assert np.allclose(once, twice, atol=1e-6)

    def test_invalid_input_rejected(self):
        with pytest.raises(ConfigError):
            cmvn(np.zeros(5))
        with pytest.raises(ConfigError):
            cmvn(np.zeros((0, 4)))


class TestSplice:
    def test_output_shape(self):
        feats = np.arange(12.0).reshape(4, 3)
        out = splice(feats, context=2)
        assert out.shape == (4, 15)

    def test_zero_context_is_identity(self):
        feats = np.arange(6.0).reshape(3, 2)
        assert np.array_equal(splice(feats, 0), feats)

    def test_center_columns_are_original(self):
        feats = np.random.default_rng(3).normal(size=(6, 4))
        out = splice(feats, context=2)
        center = out[:, 2 * 4 : 3 * 4]
        assert np.allclose(center, feats)

    def test_edges_repeat(self):
        feats = np.array([[1.0], [2.0], [3.0]])
        out = splice(feats, context=1)
        # First frame: left context repeats frame 0.
        assert out[0].tolist() == [1.0, 1.0, 2.0]
        # Last frame: right context repeats frame 2.
        assert out[2].tolist() == [2.0, 3.0, 3.0]

    def test_interior_frame_sees_true_neighbours(self):
        feats = np.array([[1.0], [2.0], [3.0]])
        out = splice(feats, context=1)
        assert out[1].tolist() == [1.0, 2.0, 3.0]

    def test_negative_context_rejected(self):
        with pytest.raises(ConfigError):
            splice(np.zeros((3, 2)), context=-1)
