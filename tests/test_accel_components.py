"""Unit tests for the accelerator building blocks: memory controller,
caches, hash tables, and pipeline timing primitives."""

import pytest

from repro.common.errors import ConfigError
from repro.accel import Cache, MemoryController, Region, TokenHashTable
from repro.accel.config import CacheConfig, HashConfig
from repro.accel.pipeline import RollingWindow, ThroughputGate


class TestMemoryController:
    def test_fixed_latency(self):
        mem = MemoryController(latency_cycles=50)
        assert mem.request(100, Region.ARCS, 64) == 150

    def test_traffic_accounting(self):
        mem = MemoryController()
        mem.request(0, Region.ARCS, 64)
        mem.request(0, Region.STATES, 64, write=False)
        mem.write_nonblocking(0, Region.TOKENS, 64)
        assert mem.traffic.read_bytes[Region.ARCS] == 64
        assert mem.traffic.read_bytes[Region.STATES] == 64
        assert mem.traffic.write_bytes[Region.TOKENS] == 64
        assert mem.traffic.total_bytes() == 192

    def test_queueing_when_burst_exceeds_inflight(self):
        mem = MemoryController(latency_cycles=50, max_inflight=4)
        times = [mem.request(0, Region.ARCS, 64) for _ in range(5)]
        # The fifth request waits for the first to retire.
        assert times[4] > times[0]

    def test_no_queueing_when_spread_out(self):
        mem = MemoryController(latency_cycles=50, max_inflight=4)
        done = [mem.request(t * 100, Region.ARCS, 64) for t in range(6)]
        for t, d in zip(range(6), done):
            assert d == t * 100 + 50


class TestCache:
    def make(self, size=1024, assoc=2, perfect=False):
        mem = MemoryController(latency_cycles=50)
        cfg = CacheConfig(size_bytes=size, assoc=assoc, perfect=perfect)
        return Cache(cfg, mem, Region.ARCS), mem

    def test_miss_then_hit(self):
        cache, _ = self.make()
        t1, hit1 = cache.access(0, 0x100)
        t2, hit2 = cache.access(t1, 0x100)
        assert not hit1 and hit2
        assert t1 == 50
        assert t2 == t1 + 1

    def test_same_line_hits(self):
        cache, _ = self.make()
        cache.access(0, 0x100)
        _t, hit = cache.access(60, 0x13F)  # same 64-byte line
        assert hit

    def test_adjacent_line_misses(self):
        cache, _ = self.make()
        cache.access(0, 0x100)
        _t, hit = cache.access(60, 0x140)
        assert not hit

    def test_lru_eviction(self):
        # 1024 B, 2-way, 64 B lines -> 8 sets; two lines map to set 0
        # when their line ids differ by 8.
        cache, _ = self.make(size=1024, assoc=2)
        a, b, c = 0x000, 0x200, 0x400  # line ids 0, 8, 16 -> all set 0
        cache.access(0, a)
        cache.access(100, b)
        cache.access(200, c)  # evicts a (LRU)
        _t, hit_b = cache.access(300, b)
        _t, hit_a = cache.access(400, a)
        assert hit_b and not hit_a

    def test_tags_updated_immediately(self):
        """Paper, Section IV-A: a second access to an in-flight line hits
        but still waits for the fill."""
        cache, _ = self.make()
        t1, hit1 = cache.access(0, 0x100)
        t2, hit2 = cache.access(1, 0x100)
        assert not hit1 and hit2
        assert t2 >= t1  # data not available before the fill returns

    def test_dirty_eviction_writes_back(self):
        cache, mem = self.make(size=1024, assoc=2)
        cache.access(0, 0x000, write=True)
        cache.access(100, 0x200)
        cache.access(200, 0x400)  # evicts the dirty line
        assert cache.stats.writebacks == 1
        assert mem.traffic.write_bytes.get(Region.ARCS, 0) == 64

    def test_perfect_cache_never_misses(self):
        cache, _ = self.make(perfect=True)
        for addr in range(0, 1 << 16, 64):
            _t, hit = cache.access(0, addr)
            assert hit
        assert cache.stats.misses == 0

    def test_flush_dirty(self):
        cache, mem = self.make()
        cache.access(0, 0x000, write=True)
        cache.access(0, 0x040, write=True)
        count = cache.flush_dirty(100)
        assert count == 2
        assert mem.traffic.write_bytes[Region.ARCS] == 128

    def test_miss_ratio(self):
        cache, _ = self.make()
        cache.access(0, 0x000)
        cache.access(10, 0x000)
        cache.access(20, 0x000)
        cache.access(30, 0x040)
        assert cache.stats.miss_ratio == pytest.approx(0.5)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=100, assoc=2)  # not line-aligned
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=0, assoc=1)


class TestTokenHashTable:
    def make(self, entries=64, backup=8, perfect=False):
        mem = MemoryController(latency_cycles=50)
        cfg = HashConfig(
            num_entries=entries, backup_entries=backup, perfect=perfect
        )
        return TokenHashTable(cfg, mem), mem

    def test_first_insert_is_one_cycle(self):
        hash_table, _ = self.make()
        done, cycles = hash_table.access(10, state=5)
        assert cycles == 1
        assert done == 11

    def test_repeat_access_same_cost(self):
        hash_table, _ = self.make()
        hash_table.access(0, state=5)
        _done, cycles = hash_table.access(10, state=5)
        assert cycles == 1

    def test_collision_costs_extra_cycles(self):
        hash_table, _ = self.make(entries=1)  # everything collides
        hash_table.access(0, state=1)
        _done, c2 = hash_table.access(10, state=2)
        _done, c3 = hash_table.access(20, state=3)
        assert c2 == 2 and c3 == 3
        assert hash_table.stats.collisions == 2

    def test_overflow_goes_to_memory(self):
        hash_table, mem = self.make(entries=1, backup=1)
        hash_table.access(0, state=1)
        hash_table.access(0, state=2)  # fills the backup buffer
        done, cycles = hash_table.access(0, state=3)  # overflows
        assert cycles >= 50
        assert hash_table.stats.overflows >= 1
        assert mem.traffic.region_bytes(Region.OVERFLOW) > 0

    def test_clear_resets_frame(self):
        hash_table, _ = self.make(entries=1)
        hash_table.access(0, state=1)
        hash_table.access(0, state=2)
        hash_table.clear()
        _done, cycles = hash_table.access(0, state=2)
        assert cycles == 1
        assert hash_table.occupancy == 1

    def test_perfect_hash_always_one_cycle(self):
        hash_table, _ = self.make(entries=1, perfect=True)
        for s in range(20):
            _done, cycles = hash_table.access(0, state=s)
            assert cycles == 1

    def test_avg_cycles_metric(self):
        hash_table, _ = self.make(entries=1)
        hash_table.access(0, state=1)
        hash_table.access(0, state=2)
        assert hash_table.stats.avg_cycles_per_request == pytest.approx(1.5)


class TestPipelinePrimitives:
    def test_rolling_window_allows_depth(self):
        win = RollingWindow(2)
        assert win.gate() == 0
        win.push(100)
        assert win.gate() == 0
        win.push(200)
        assert win.gate() == 100  # third op waits for the first

    def test_rolling_window_drain(self):
        win = RollingWindow(4)
        win.push(10)
        win.push(50)
        assert win.drain() == 50

    def test_rolling_window_invalid_depth(self):
        with pytest.raises(ConfigError):
            RollingWindow(0)

    def test_throughput_gate_spacing(self):
        gate = ThroughputGate(2)
        assert gate.next_slot(0) == 0
        assert gate.next_slot(0) == 2
        assert gate.next_slot(10) == 10
        assert gate.next_slot(10) == 12

    def test_throughput_gate_reset(self):
        gate = ThroughputGate(1)
        gate.next_slot(5)
        gate.reset()
        assert gate.next_slot(0) == 0
