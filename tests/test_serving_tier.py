"""Tests for the sharded ServingTier.

Correctness anchor: every session routed through the worker pool decodes
to exactly the words and path score of a one-shot
``BatchDecoder.decode``; every rejected operation (admission, back-
pressure, malformed chunk) fails with a typed error and leaves the rest
of the fleet undisturbed.
"""

import asyncio

import numpy as np
import pytest

from repro.common.errors import (
    AdmissionError,
    BackpressureError,
    ConfigError,
    DecodeError,
    TierError,
)
from repro.decoder import BatchDecoder, BeamSearchConfig
from repro.system import ServingTier, TierConfig
from repro.wfst import save_graph_mmap


@pytest.fixture()
def config():
    return BeamSearchConfig(beam=14.0, max_active=60)


@pytest.fixture()
def oneshot(small_task, config):
    decoder = BatchDecoder(small_task.graph, config)
    return decoder.decode_batch([u.scores for u in small_task.utterances])


def make_tier(small_task, config, **kwargs):
    return ServingTier(
        graph=small_task.graph,
        search_config=config,
        tier_config=TierConfig(**kwargs),
    )


class TestEquivalence:
    @pytest.mark.parametrize("num_workers", [1, 2])
    def test_decode_streaming_matches_oneshot(
        self, small_task, config, oneshot, num_workers
    ):
        with make_tier(small_task, config, num_workers=num_workers) as tier:
            results = tier.decode_streaming(
                [u.scores for u in small_task.utterances], chunk_frames=4
            )
        for expected, got in zip(oneshot, results):
            assert got.words == expected.words
            assert got.log_likelihood == expected.log_likelihood
            assert got.reached_final == expected.reached_final

    def test_from_premapped_graph_dir(
        self, tmp_path, small_task, config, oneshot
    ):
        """A tier built on a pre-materialised mmap layout (the graph
        cache's product) decodes identically."""
        directory = save_graph_mmap(
            small_task.graph, str(tmp_path / "graph.mmap")
        )
        with ServingTier(
            graph_dir=directory,
            search_config=config,
            tier_config=TierConfig(num_workers=2),
        ) as tier:
            results = tier.decode_streaming(
                [u.scores for u in small_task.utterances], chunk_frames=5
            )
        for expected, got in zip(oneshot, results):
            assert got.words == expected.words
            assert got.log_likelihood == expected.log_likelihood

    def test_sessions_have_worker_affinity(self, small_task, config):
        """Every chunk of a session decodes on the shard that admitted
        it, and the least-loaded router spreads sessions evenly."""
        with make_tier(small_task, config, num_workers=2) as tier:
            sids = [tier.open_session() for _ in range(4)]
            homes = {sid: tier.worker_of(sid) for sid in sids}
            assert sorted(homes.values()) == [0, 0, 1, 1]
            matrix = small_task.utterances[0].scores.matrix
            for offset in (0, 4, 8):
                for sid in sids:
                    tier.push(sid, matrix[offset: offset + 4])
            for sid in sids:
                assert tier.worker_of(sid) == homes[sid]
                tier.close_input(sid)
            for sid in sids:
                record = tier.result(sid, timeout=60)
                assert record.ok, record.error

    def test_slo_stats_recorded(self, small_task, config):
        with make_tier(small_task, config, num_workers=2) as tier:
            tier.decode_streaming(
                [u.scores for u in small_task.utterances], chunk_frames=4
            )
            stats = tier.stats
        utts = small_task.utterances
        assert stats.sessions_admitted == len(utts)
        assert stats.sessions_finished == len(utts)
        assert stats.sessions_failed == 0
        assert stats.frames_decoded == sum(u.num_frames for u in utts)
        assert len(stats.session_latencies_s) == len(utts)
        slo = stats.slo()
        assert slo["sessions"] == len(utts)
        assert 0 < slo["p50_session_latency_s"] <= slo["p99_session_latency_s"]
        assert slo["aggregate_frames_per_second"] > 0
        final = [s for s in tier.worker_stats if s is not None]
        assert sum(s.frames_decoded for s in final) == stats.frames_decoded


class TestAdmissionAndBackpressure:
    def test_admission_limit_sheds_typed_and_isolated(
        self, small_task, config, oneshot
    ):
        utts = small_task.utterances
        with make_tier(
            small_task, config, num_workers=2, max_sessions=len(utts)
        ) as tier:
            sids = {i: tier.open_session() for i in range(len(utts))}
            with pytest.raises(AdmissionError, match="admission limit"):
                tier.open_session()
            assert tier.stats.sessions_rejected == 1
            # The shed join disturbed nobody: the fleet decodes exactly.
            for i, sid in sids.items():
                tier.push(sid, utts[i].scores)
                tier.close_input(sid)
            for i, sid in sids.items():
                record = tier.result(sid, timeout=60)
                assert record.ok, record.error
                assert record.result.words == oneshot[i].words

    def test_admission_reopens_after_retirement(self, small_task, config):
        with make_tier(
            small_task, config, num_workers=1, max_sessions=1
        ) as tier:
            sid = tier.open_session()
            with pytest.raises(AdmissionError):
                tier.open_session()
            tier.push(sid, small_task.utterances[0].scores)
            tier.close_input(sid)
            tier.result(sid, timeout=60)
            tier.open_session()  # slot freed by the retirement

    def test_backpressure_sheds_typed_and_retryable(
        self, small_task, config
    ):
        matrix = small_task.utterances[0].scores.matrix
        with make_tier(
            small_task, config, num_workers=1, queue_depth=8
        ) as tier:
            sid = tier.open_session()
            with pytest.raises(BackpressureError, match="saturated"):
                for _ in range(1000):
                    tier.push(sid, matrix[:4])
            assert tier.stats.pushes_shed == 1
            # The shard drains; the same push then succeeds (retryable).
            deadline_frames = tier.stats.frames_pushed
            while True:
                tier.poll()
                try:
                    tier.push(sid, matrix[:4])
                    break
                except BackpressureError:
                    continue
            assert tier.stats.frames_pushed == deadline_frames + 4
            tier.close_input(sid)
            assert tier.result(sid, timeout=60) is not None


class TestErrors:
    def test_requires_exactly_one_graph_source(self, small_task):
        with pytest.raises(ConfigError):
            ServingTier()
        with pytest.raises(ConfigError):
            ServingTier(graph=small_task.graph, graph_dir="/tmp/x")

    def test_invalid_tier_config_rejected(self):
        with pytest.raises(ConfigError):
            TierConfig(num_workers=0)
        with pytest.raises(ConfigError):
            TierConfig(max_sessions=-1)
        with pytest.raises(ConfigError):
            TierConfig(queue_depth=0)
        with pytest.raises(ConfigError):
            TierConfig(start_method="martian")

    def test_width_mismatch_bounces_at_the_door(
        self, small_task, config, oneshot
    ):
        """A mid-stream width change raises synchronously at the front
        door -- no worker round trip -- and other sessions are unhurt."""
        utts = small_task.utterances
        width = utts[0].scores.matrix.shape[1]
        with make_tier(small_task, config, num_workers=2) as tier:
            sids = {i: tier.open_session() for i in range(len(utts))}
            tier.push(sids[0], utts[0].scores.matrix[:4])
            with pytest.raises(DecodeError, match="wide like"):
                tier.push(sids[0], np.full((2, width + 5), -1.0))
            with pytest.raises(DecodeError, match="at least"):
                tier.push(sids[1], np.zeros((2, 1)))
            tier.push(sids[0], utts[0].scores.matrix[4:])
            for i, sid in sids.items():
                if i != 0:
                    tier.push(sid, utts[i].scores)
                tier.close_input(sid)
            for i, sid in sids.items():
                record = tier.result(sid, timeout=60)
                assert record.ok, record.error
                assert record.result.words == oneshot[i].words
                assert record.result.log_likelihood == oneshot[i].log_likelihood

    def test_unknown_and_retired_sessions_rejected(self, small_task, config):
        with make_tier(small_task, config, num_workers=1) as tier:
            with pytest.raises(DecodeError, match="unknown"):
                tier.push(99, np.zeros((1, 5)))
            with pytest.raises(DecodeError, match="unknown"):
                tier.result(99)
            with pytest.raises(DecodeError, match="unknown"):
                tier.worker_of(99)
            sid = tier.open_session()
            tier.push(sid, small_task.utterances[0].scores)
            tier.close_input(sid)
            tier.result(sid, timeout=60)
            with pytest.raises(DecodeError, match="retired"):
                tier.push(sid, small_task.utterances[0].scores)

    def test_result_timeout_is_typed(self, small_task, config):
        with make_tier(small_task, config, num_workers=1) as tier:
            sid = tier.open_session()  # input never closed: no record
            with pytest.raises(TierError, match="no record"):
                tier.result(sid, timeout=0.2)

    def test_shutdown_finalizes_open_sessions_and_closes_the_door(
        self, small_task, config
    ):
        tier = make_tier(small_task, config, num_workers=2)
        sid = tier.open_session()
        tier.push(sid, small_task.utterances[0].scores)
        tier.shutdown()
        record = tier._sessions[sid].record
        assert record is not None and record.ok
        assert all(s is not None for s in tier.worker_stats)
        with pytest.raises(TierError, match="shut down"):
            tier.open_session()
        tier.shutdown()  # idempotent


class TestAsyncFrontDoor:
    def test_async_session_round_trip(self, small_task, config, oneshot):
        async def main():
            with make_tier(small_task, config, num_workers=2) as tier:
                utts = small_task.utterances
                sids = [await tier.aopen_session() for _ in utts]
                for sid, utt in zip(sids, utts):
                    matrix = utt.scores.matrix
                    for i in range(0, len(matrix), 4):
                        await tier.apush(sid, matrix[i: i + 4])
                for sid in sids:
                    await tier.aclose_input(sid)
                return [await tier.aresult(sid, 60) for sid in sids]

        records = asyncio.run(main())
        for expected, record in zip(oneshot, records):
            assert record.ok, record.error
            assert record.result.words == expected.words
            assert record.result.log_likelihood == expected.log_likelihood

    def test_concurrent_async_clients(self, small_task, config, oneshot):
        """Many coroutines each driving their own session concurrently
        over one tier, as an asyncio gateway would."""

        async def client(tier, utt):
            sid = await tier.aopen_session()
            matrix = utt.scores.matrix
            for i in range(0, len(matrix), 5):
                await tier.apush(sid, matrix[i: i + 5])
            await tier.aclose_input(sid)
            return await tier.aresult(sid, 60)

        async def main():
            with make_tier(small_task, config, num_workers=2) as tier:
                return await asyncio.gather(
                    *(client(tier, u) for u in small_task.utterances)
                )

        records = asyncio.run(main())
        for expected, record in zip(oneshot, records):
            assert record.ok, record.error
            assert record.result.words == expected.words
