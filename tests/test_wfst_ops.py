"""Tests for WFST graph operations: compose, connect, arcsort, epsilon checks."""

import pytest

from repro.common.errors import GraphError
from repro.wfst import EPSILON, Fst, arcsort, check_epsilon_acyclic, compose, connect


def acceptor(labels, weight_per_arc=0.0):
    """Linear acceptor over the given label sequence (ilabel == olabel)."""
    fst = Fst()
    prev = fst.add_state()
    fst.set_start(prev)
    for lab in labels:
        nxt = fst.add_state()
        fst.add_arc(prev, lab, lab, weight_per_arc, nxt)
        prev = nxt
    fst.set_final(prev, 0.0)
    return fst


def transducer(pairs):
    """Linear transducer over (ilabel, olabel) pairs."""
    fst = Fst()
    prev = fst.add_state()
    fst.set_start(prev)
    for ilab, olab in pairs:
        nxt = fst.add_state()
        fst.add_arc(prev, ilab, olab, 0.0, nxt)
        prev = nxt
    fst.set_final(prev, 0.0)
    return fst


class TestCompose:
    def test_chain_composition_relabels(self):
        # 1:2 composed with 2:3 accepts input 1 and outputs 3.
        left = transducer([(1, 2)])
        right = transducer([(2, 3)])
        out = compose(left, right)
        arcs = out.arcs(out.start)
        assert len(arcs) == 1
        assert (arcs[0].ilabel, arcs[0].olabel) == (1, 3)

    def test_mismatched_labels_rejected(self):
        left = transducer([(1, 2)])
        right = transducer([(5, 3)])
        with pytest.raises(GraphError):
            compose(left, right)  # connect() finds no accepting path

    def test_weights_multiply(self):
        left = acceptor([1], weight_per_arc=-0.5)
        right = acceptor([1], weight_per_arc=-0.25)
        out = compose(left, right)
        assert out.arcs(out.start)[0].weight == pytest.approx(-0.75)

    def test_left_epsilon_output_advances_alone(self):
        # Left: 1:eps then 2:3 ; right accepts 3.
        left = transducer([(1, EPSILON), (2, 3)])
        right = acceptor([3])
        out = compose(left, right)
        # The composed machine should accept input sequence [1, 2].
        state = out.start
        seen = []
        while out.out_degree(state):
            arc = out.arcs(state)[0]
            seen.append(arc.ilabel)
            state = arc.dest
        assert seen == [1, 2]
        assert out.is_final(state)

    def test_right_epsilon_input_advances_alone(self):
        left = acceptor([1])
        # Right: eps:9 then 1:1.
        right = transducer([(EPSILON, 9), (1, 1)])
        out = compose(left, right)
        olabels = set()
        stack = [out.start]
        visited = set()
        while stack:
            s = stack.pop()
            if s in visited:
                continue
            visited.add(s)
            for arc in out.arcs(s):
                olabels.add(arc.olabel)
                stack.append(arc.dest)
        assert 9 in olabels

    def test_final_weights_multiply(self):
        left = acceptor([1])
        left.set_final(left.num_states - 1, -0.5)
        right = acceptor([1])
        right.set_final(right.num_states - 1, -0.25)
        out = compose(left, right)
        final_states = [s for s in out.states() if out.is_final(s)]
        assert len(final_states) == 1
        assert out.final_weight(final_states[0]) == pytest.approx(-0.75)


class TestConnect:
    def test_removes_unreachable_states(self):
        fst = acceptor([1, 2])
        orphan = fst.add_state()
        fst.add_arc(orphan, 3, 3, 0.0, orphan)
        out = connect(fst)
        assert out.num_states == 3

    def test_removes_dead_end_states(self):
        fst = acceptor([1])
        dead = fst.add_state()
        fst.add_arc(fst.start, 7, 7, 0.0, dead)  # dead never reaches final
        out = connect(fst)
        assert out.num_states == 2
        assert all(a.ilabel != 7 for a in out.arcs(out.start))

    def test_no_accepting_path_raises(self):
        fst = Fst()
        s = fst.add_state()
        fst.set_start(s)  # no final state anywhere
        with pytest.raises(GraphError):
            connect(fst)


class TestArcsort:
    def test_non_epsilon_first(self):
        fst = Fst()
        s0, s1 = fst.add_states(2)
        fst.set_start(s0)
        fst.add_arc(s0, EPSILON, 0, 0.0, s1)
        fst.add_arc(s0, 2, 0, 0.0, s1)
        fst.add_arc(s0, 1, 0, 0.0, s1)
        fst.set_final(s1)
        out = arcsort(fst)
        labels = [a.ilabel for a in out.arcs(s0)]
        assert labels == [1, 2, EPSILON]

    def test_is_pure(self):
        """Like every wfst.ops operation, arcsort leaves its input alone."""
        fst = Fst()
        s0, s1 = fst.add_states(2)
        fst.set_start(s0)
        fst.add_arc(s0, 2, 0, 0.0, s1)
        fst.add_arc(s0, 1, 0, 0.0, s1)
        fst.set_final(s1, -0.5)
        out = arcsort(fst)
        assert [a.ilabel for a in fst.arcs(s0)] == [2, 1]
        assert [a.ilabel for a in out.arcs(s0)] == [1, 2]
        assert out.final_weight(s1) == pytest.approx(-0.5)


class TestEdgeCases:
    """Degenerate inputs: empty FSTs, no finals, disconnected graphs."""

    def test_connect_empty_fst_raises(self):
        with pytest.raises(GraphError):
            connect(Fst())  # no start state at all

    def test_compose_with_empty_fst_raises(self):
        with pytest.raises(GraphError):
            compose(Fst(), acceptor([1]))
        with pytest.raises(GraphError):
            compose(acceptor([1]), Fst())

    def test_connect_no_final_states_raises(self):
        fst = Fst()
        s0, s1 = fst.add_states(2)
        fst.set_start(s0)
        fst.add_arc(s0, 1, 1, 0.0, s1)
        with pytest.raises(GraphError):
            connect(fst)

    def test_compose_no_final_right_raises(self):
        left = acceptor([1])
        right = Fst()
        r0, r1 = right.add_states(2)
        right.set_start(r0)
        right.add_arc(r0, 1, 1, 0.0, r1)  # never final
        with pytest.raises(GraphError):
            compose(left, right)

    def test_connect_fully_disconnected_component_dropped(self):
        fst = acceptor([1])
        # A second component never linked to the start component.
        a, b = fst.add_states(2)
        fst.add_arc(a, 5, 5, 0.0, b)
        fst.set_final(b)
        out = connect(fst)
        assert out.num_states == 2
        assert all(a.ilabel != 5 for s in out.states() for a in out.arcs(s))

    def test_connect_start_is_final_with_no_arcs(self):
        fst = Fst()
        s = fst.add_state()
        fst.set_start(s)
        fst.set_final(s, -0.25)
        out = connect(fst)
        assert out.num_states == 1
        assert out.final_weight(out.start) == pytest.approx(-0.25)


class TestEpsilonCycleCheck:
    def test_acyclic_passes(self):
        fst = transducer([(EPSILON, 0), (1, 1)])
        check_epsilon_acyclic(fst)  # should not raise

    def test_self_loop_detected(self):
        fst = Fst()
        s = fst.add_state()
        fst.set_start(s)
        fst.set_final(s)
        fst.add_arc(s, EPSILON, 0, 0.0, s)
        with pytest.raises(GraphError):
            check_epsilon_acyclic(fst)

    def test_two_state_cycle_detected(self):
        fst = Fst()
        s0, s1 = fst.add_states(2)
        fst.set_start(s0)
        fst.set_final(s1)
        fst.add_arc(s0, EPSILON, 0, 0.0, s1)
        fst.add_arc(s1, EPSILON, 0, 0.0, s0)
        with pytest.raises(GraphError):
            check_epsilon_acyclic(fst)

    def test_non_epsilon_cycle_is_fine(self):
        fst = Fst()
        s0, s1 = fst.add_states(2)
        fst.set_start(s0)
        fst.set_final(s1)
        fst.add_arc(s0, 1, 0, 0.0, s1)
        fst.add_arc(s1, 2, 0, 0.0, s0)
        check_epsilon_acyclic(fst)  # should not raise
