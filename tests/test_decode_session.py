"""Tests for resumable decode sessions and the fused multi-session sweep.

The contract: feeding an utterance's frames through a
:class:`DecodeSession` in *any* chunking yields exactly the words, path
score and search counters of one-shot ``BatchDecoder.decode`` -- and
:func:`advance_sessions` over many sessions is bit-identical to advancing
each session alone.
"""

import numpy as np
import pytest

from repro.common.errors import DecodeError
from repro.acoustic.scorer import AcousticScores
from repro.decoder import (
    BatchDecoder,
    BeamSearchConfig,
    ViterbiDecoder,
    advance_sessions,
)


def chunks_of(matrix, sizes):
    """Split a score matrix into consecutive chunks of the given sizes."""
    out, at = [], 0
    while at < len(matrix):
        for size in sizes:
            out.append(matrix[at: at + size])
            at += size
            if at >= len(matrix):
                break
    return [c for c in out if len(c)]


def assert_same_result(expected, got):
    assert got.words == expected.words
    assert got.log_likelihood == expected.log_likelihood
    assert got.reached_final == expected.reached_final


class TestChunkedEquivalence:
    @pytest.mark.parametrize("sizes", [(1,), (2,), (3,), (7,), (1000,),
                                       (1, 5, 2), (4, 1, 1, 9)])
    def test_any_chunking_matches_oneshot(self, small_task, sizes):
        config = BeamSearchConfig(beam=14.0, max_active=60)
        decoder = BatchDecoder(small_task.graph, config)
        for utt in small_task.utterances:
            expected = decoder.decode(utt.scores)
            session = decoder.open_session()
            for chunk in chunks_of(utt.scores.matrix, sizes):
                session.push(chunk)
            result = session.finalize()
            assert_same_result(expected, result)
            assert result.stats.arcs_processed == expected.stats.arcs_processed
            assert result.stats.tokens_pruned == expected.stats.tokens_pruned
            assert result.stats.frames == expected.stats.frames

    def test_push_accepts_acoustic_scores_objects(self, small_task):
        decoder = BatchDecoder(small_task.graph, BeamSearchConfig(beam=14.0))
        utt = small_task.utterances[0]
        expected = decoder.decode(utt.scores)
        session = decoder.open_session()
        assert session.push(utt.scores) == utt.num_frames
        assert_same_result(expected, session.finalize())

    def test_matches_scalar_reference(self, small_task):
        config = BeamSearchConfig(beam=12.0)
        reference = ViterbiDecoder(small_task.graph, config)
        decoder = BatchDecoder(small_task.graph, config)
        utt = small_task.utterances[1]
        session = decoder.open_session()
        session.push(utt.scores.matrix[:5])
        session.push(utt.scores.matrix[5:])
        result = session.finalize()
        expected = reference.decode(utt.scores)
        assert result.words == expected.words
        assert result.log_likelihood == pytest.approx(
            expected.log_likelihood, abs=1e-12
        )


class TestPartials:
    def test_partial_matches_prefix_decode(self, small_task):
        config = BeamSearchConfig(beam=14.0)
        decoder = BatchDecoder(small_task.graph, config)
        utt = small_task.utterances[0]
        session = decoder.open_session()
        for cut in (3, 9, utt.num_frames):
            session.push(utt.scores.matrix[session.frames_pushed:cut])
            prefix = AcousticScores(utt.scores.matrix[:cut])
            assert_same_result(decoder.decode(prefix), session.partial())

    def test_partial_does_not_disturb_the_search(self, small_task):
        decoder = BatchDecoder(small_task.graph, BeamSearchConfig(beam=14.0))
        utt = small_task.utterances[2]
        expected = decoder.decode(utt.scores)
        session = decoder.open_session()
        for row in utt.scores.matrix:
            session.push_frame(row)
            session.partial()
        assert_same_result(expected, session.finalize())

    def test_partial_stats_are_a_snapshot(self, small_task):
        decoder = BatchDecoder(small_task.graph, BeamSearchConfig(beam=14.0))
        utt = small_task.utterances[0]
        session = decoder.open_session()
        session.push(utt.scores.matrix[:4])
        snapshot = session.partial().stats
        frames_then = snapshot.frames
        session.push(utt.scores.matrix[4:])
        assert snapshot.frames == frames_then


class TestSessionLifecycle:
    def test_finalize_without_frames_rejected(self, small_graph):
        session = BatchDecoder(small_graph).open_session()
        with pytest.raises(DecodeError):
            session.finalize()

    def test_push_after_finalize_rejected(self, small_task):
        decoder = BatchDecoder(small_task.graph, BeamSearchConfig(beam=14.0))
        session = decoder.open_session()
        session.push(small_task.utterances[0].scores)
        session.finalize()
        assert session.finalized
        with pytest.raises(DecodeError):
            session.push_frame(small_task.utterances[0].scores.matrix[0])
        with pytest.raises(DecodeError):
            session.finalize()

    def test_bad_chunk_shape_rejected(self, small_graph):
        session = BatchDecoder(small_graph).open_session()
        with pytest.raises(DecodeError):
            session.push(np.zeros((2, 3, 4)))

    def test_frames_pushed_counts(self, small_task):
        decoder = BatchDecoder(small_task.graph, BeamSearchConfig(beam=14.0))
        session = decoder.open_session()
        assert session.frames_pushed == 0
        session.push(small_task.utterances[0].scores.matrix[:6])
        assert session.frames_pushed == 6


class TestFusedSweep:
    def test_fused_identical_to_solo_sessions(self, small_task):
        config = BeamSearchConfig(beam=12.0, max_active=40)
        decoder = BatchDecoder(small_task.graph, config)
        utts = small_task.utterances
        solo = [decoder.decode(u.scores) for u in utts]

        sessions = [decoder.open_session() for _ in utts]
        max_frames = max(u.num_frames for u in utts)
        for frame in range(max_frames):
            advance_sessions(
                [
                    (s, u.scores.frame(frame))
                    for s, u in zip(sessions, utts)
                    if frame < u.num_frames
                ]
            )
        for expected, session in zip(solo, sessions):
            result = session.finalize()
            assert_same_result(expected, result)
            for counter in ("tokens_pruned", "states_expanded",
                            "arcs_processed", "epsilon_arcs_processed",
                            "tokens_created", "tokens_updated"):
                assert getattr(result.stats, counter) == getattr(
                    expected.stats, counter
                ), counter
            assert (
                result.stats.active_tokens_per_frame
                == expected.stats.active_tokens_per_frame
            )

    def test_fused_rejects_mixed_decoders(self, small_task):
        a = BatchDecoder(small_task.graph).open_session()
        b = BatchDecoder(small_task.graph).open_session()
        row = small_task.utterances[0].scores.matrix[0]
        with pytest.raises(DecodeError):
            advance_sessions([(a, row), (b, row)])

    def test_fused_rejects_duplicate_sessions(self, small_task):
        session = BatchDecoder(small_task.graph).open_session()
        row = small_task.utterances[0].scores.matrix[0]
        with pytest.raises(DecodeError):
            advance_sessions([(session, row), (session, row)])

    def test_fused_rejects_ragged_rows(self, small_task):
        decoder = BatchDecoder(small_task.graph)
        a, b = decoder.open_session(), decoder.open_session()
        row = small_task.utterances[0].scores.matrix[0]
        with pytest.raises(DecodeError):
            advance_sessions([(a, row), (b, row[:-1])])

    def test_ragged_widths_fall_back_to_solo_advances(self, small_task):
        """Mixed score widths cannot fuse, but still decode identically
        (decode_batch accepted ragged widths before the fused engine)."""
        decoder = BatchDecoder(small_task.graph, BeamSearchConfig(beam=14.0))
        base = small_task.utterances[0].scores
        padded = AcousticScores(
            np.concatenate(
                [base.matrix, np.full((base.num_frames, 3), -1e9)], axis=1
            )
        )
        expected = decoder.decode(base)
        results = decoder.decode_batch([base, padded])
        for result in results:
            assert result.words == expected.words
            assert result.log_likelihood == expected.log_likelihood

    def test_empty_and_single_pairs(self, small_task):
        advance_sessions([])
        decoder = BatchDecoder(small_task.graph, BeamSearchConfig(beam=14.0))
        utt = small_task.utterances[0]
        expected = decoder.decode(utt.scores)
        session = decoder.open_session()
        for frame in range(utt.num_frames):
            advance_sessions([(session, utt.scores.frame(frame))])
        assert_same_result(expected, session.finalize())
