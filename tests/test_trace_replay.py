"""Equivalence suite for the trace-once/replay-many split.

The contract: for every accelerator configuration, replaying a recorded
:class:`~repro.accel.trace.DecodeTrace` must be *cycle-identical* (and
statistics-identical) to running the monolithic
:class:`~repro.accel.simulator.AcceleratorSimulator`, and word-identical
on the decoded output.  The grid below crosses the Table I operating
point with deliberately hostile variants: tiny caches (thrashing), tiny
hash tables with tiny backup buffers (collision chains + Overflow Buffer
spills), long-latency narrow memory controllers (queueing), deep and
shallow prefetch windows, perfect components and the Section IV-B sorted
layout at several comparator counts.
"""

from dataclasses import replace

import pytest

from repro.common.errors import ConfigError, SimulationError
from repro.accel import (
    AcceleratorConfig,
    AcceleratorSimulator,
    CacheConfig,
    HashConfig,
    TraceRecorder,
    TraceReplayer,
)
from repro.datasets import SyntheticGraphConfig
from repro.system import make_memory_workload
from repro.wfst import sort_states_by_arc_count

BASE = AcceleratorConfig()

#: The equivalence grid: >= 8 distinct configurations (acceptance
#: criterion), spanning every timing knob the sweeps turn.
CONFIGS = {
    "table1": BASE,
    "prefetch": BASE.with_prefetch(),
    "prefetch-shallow": replace(
        BASE, prefetch_enabled=True, prefetch_fifo_entries=4
    ),
    "state-direct": BASE.with_state_direct(),
    "both": BASE.with_both(),
    "tiny-caches": replace(
        BASE,
        state_cache=CacheConfig(2 * 1024, 2),
        arc_cache=CacheConfig(4 * 1024, 2),
        token_cache=CacheConfig(1024, 1, line_bytes=32),
    ),
    "tiny-hash-overflow": replace(
        BASE, hash_table=HashConfig(num_entries=32, backup_entries=4)
    ),
    "collisions-no-overflow": replace(
        BASE, hash_table=HashConfig(num_entries=64, backup_entries=1 << 20)
    ),
    "slow-narrow-memory": replace(
        BASE, mem_latency_cycles=200, mem_max_inflight=2
    ),
    "perfect-everything": replace(
        BASE,
        state_cache=replace(BASE.state_cache, perfect=True),
        arc_cache=replace(BASE.arc_cache, perfect=True),
        token_cache=replace(BASE.token_cache, perfect=True),
        hash_table=replace(BASE.hash_table, perfect=True),
    ),
    "zero-overhead": replace(BASE, frame_overhead_cycles=0),
    "hostile-combo": replace(
        BASE.with_prefetch(),
        arc_cache=CacheConfig(2 * 1024, 1),
        hash_table=HashConfig(num_entries=16, backup_entries=2),
        mem_latency_cycles=120,
        mem_max_inflight=4,
        prefetch_fifo_entries=16,
    ),
}


@pytest.fixture(scope="module")
def workload():
    return make_memory_workload(
        num_utterances=2,
        frames_per_utterance=8,
        beam=8.0,
        max_active=150,
        seed=9,
        graph_config=SyntheticGraphConfig(
            num_states=1500, num_phones=30, seed=9
        ),
    )


@pytest.fixture(scope="module")
def traces(workload):
    recorder = TraceRecorder(
        workload.graph, beam=workload.beam, max_active=workload.max_active
    )
    return [recorder.record(s) for s in workload.scores]


@pytest.fixture(scope="module")
def sorted_traces(workload):
    recorder = TraceRecorder(
        workload.sorted_graph.graph,
        beam=workload.beam,
        max_active=workload.max_active,
    )
    return [recorder.record(s) for s in workload.scores]


def assert_results_identical(sim_result, replay_result):
    assert replay_result.words == sim_result.words
    assert replay_result.log_likelihood == sim_result.log_likelihood
    assert replay_result.reached_final == sim_result.reached_final
    # Cycle-identical, frame by frame.
    assert replay_result.stats.cycles == sim_result.stats.cycles
    assert replay_result.stats.frame_cycles == sim_result.stats.frame_cycles
    # The full statistics dataclasses match field for field.
    assert replay_result.stats == sim_result.stats
    assert replay_result.search == sim_result.search


class TestCycleEquivalence:
    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_replay_matches_simulator(
        self, workload, traces, sorted_traces, name
    ):
        config = CONFIGS[name]
        sorted_graph = (
            workload.sorted_graph if config.state_direct_enabled else None
        )
        sim = AcceleratorSimulator(
            workload.graph, config, beam=workload.beam,
            sorted_graph=sorted_graph, max_active=workload.max_active,
        )
        replayer = TraceReplayer(
            workload.graph, config, sorted_graph=sorted_graph
        )
        layout_traces = (
            sorted_traces if config.state_direct_enabled else traces
        )
        for scores, trace in zip(workload.scores, layout_traces):
            assert_results_identical(sim.decode(scores), replayer.replay(trace))

    @pytest.mark.parametrize("n", [2, 8, 16])
    def test_sorted_layouts_by_comparator_count(self, workload, n):
        """Each Section IV-B comparator count N is its own layout+trace."""
        sorted_graph = sort_states_by_arc_count(
            workload.graph, max_direct_arcs=n
        )
        config = replace(
            BASE, state_direct_enabled=True, state_direct_max_arcs=n
        )
        recorder = TraceRecorder(
            sorted_graph.graph, beam=workload.beam,
            max_active=workload.max_active,
        )
        sim = AcceleratorSimulator(
            workload.graph, config, beam=workload.beam,
            sorted_graph=sorted_graph, max_active=workload.max_active,
        )
        replayer = TraceReplayer(
            workload.graph, config, sorted_graph=sorted_graph
        )
        scores = workload.scores[0]
        assert_results_identical(
            sim.decode(scores), replayer.replay(recorder.record(scores))
        )

    def test_no_max_active_and_wide_beam(self, workload):
        """Unlimited active set exercises the unpruned read walk."""
        recorder = TraceRecorder(workload.graph, beam=20.0, max_active=0)
        sim = AcceleratorSimulator(workload.graph, BASE, beam=20.0)
        replayer = TraceReplayer(workload.graph, BASE)
        scores = workload.scores[0]
        assert_results_identical(
            sim.decode(scores), replayer.replay(recorder.record(scores))
        )

    def test_overflow_reads_priced(self, workload, traces):
        """A spilled hash table charges DRAM trips in the next token walk."""
        config = CONFIGS["tiny-hash-overflow"]
        replayer = TraceReplayer(workload.graph, config)
        result = replayer.replay(traces[0])
        assert result.stats.hash.overflows > 0
        assert result.stats.traffic.region_bytes("overflow") > 0


class TestTraceContract:
    def test_trace_records_functional_result(self, workload, traces):
        sim = AcceleratorSimulator(
            workload.graph, BASE, beam=workload.beam,
            max_active=workload.max_active,
        )
        for scores, trace in zip(workload.scores, traces):
            result = sim.decode(scores)
            assert trace.words == result.words
            assert trace.log_likelihood == result.log_likelihood
            assert trace.search == result.search

    def test_trace_is_compact(self, traces):
        """The event arrays stay within a small multiple of the arc count."""
        t = traces[0]
        assert t.nbytes < 64 * t.num_events + 4096

    def test_layout_mismatch_rejected(self, workload, sorted_traces):
        replayer = TraceReplayer(workload.graph, BASE)
        with pytest.raises(SimulationError):
            replayer.replay(sorted_traces[0])

    def test_state_direct_requires_sorted_graph(self, workload):
        with pytest.raises(ConfigError):
            TraceReplayer(workload.graph, BASE.with_state_direct())

    def test_acoustic_buffer_capacity_enforced(self, workload, traces):
        tiny = replace(BASE, acoustic_buffer_bytes=64)
        replayer = TraceReplayer(workload.graph, tiny)
        with pytest.raises(ConfigError):
            replayer.replay(traces[0])

    def test_save_load_roundtrip(self, tmp_path, workload, traces):
        path = str(tmp_path / "trace.npz")
        traces[0].save(path)
        from repro.accel import DecodeTrace

        loaded = DecodeTrace.load(path)
        replayer = TraceReplayer(workload.graph, BASE)
        assert_results_identical(
            replayer.replay(traces[0]), replayer.replay(loaded)
        )

    def test_load_rejects_wrong_version(self, tmp_path, traces, monkeypatch):
        import repro.accel.trace as trace_mod

        path = str(tmp_path / "trace.npz")
        traces[0].save(path)
        monkeypatch.setattr(trace_mod, "TRACE_FORMAT_VERSION", 999)
        from repro.accel import DecodeTrace

        with pytest.raises(SimulationError):
            DecodeTrace.load(path)
