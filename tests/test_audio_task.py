"""Integration tests for the audio-backed task pipeline."""

import pytest

from repro.common.errors import ConfigError
from repro.accel import AcceleratorConfig, AcceleratorSimulator
from repro.datasets import AudioTaskConfig, generate_audio_task
from repro.decoder import BeamSearchConfig, ViterbiDecoder, word_error_rate


@pytest.fixture(scope="module")
def audio_task():
    return generate_audio_task(
        AudioTaskConfig(
            vocab_size=20, corpus_sentences=150, num_utterances=3,
            train_utterances=30, epochs=8, seed=2,
        )
    )


class TestAcousticModelQuality:
    def test_frame_accuracy_high(self, audio_task):
        """The synthetic audio must be learnable (else scores are noise)."""
        assert audio_task.frame_accuracy > 0.85

    def test_scores_shape(self, audio_task):
        utt = audio_task.task.utterances[0]
        assert utt.scores.num_phones == audio_task.task.num_phones


class TestEndToEndDecoding:
    def test_software_decoder_wer(self, audio_task):
        decoder = ViterbiDecoder(
            audio_task.task.graph, BeamSearchConfig(beam=20.0)
        )
        total = 0.0
        for utt in audio_task.task.utterances:
            result = decoder.decode(utt.scores)
            total += word_error_rate(utt.words, result.words)
        assert total / len(audio_task.task.utterances) < 0.35

    def test_accelerator_matches_reference(self, audio_task):
        """The hardware decodes real-DNN scores identically too."""
        graph = audio_task.task.graph
        ref = ViterbiDecoder(graph, BeamSearchConfig(beam=20.0))
        sim = AcceleratorSimulator(graph, AcceleratorConfig(), beam=20.0)
        for utt in audio_task.task.utterances:
            assert sim.decode(utt.scores).words == ref.decode(utt.scores).words


class TestConfig:
    def test_deterministic(self):
        cfg = AudioTaskConfig(vocab_size=10, corpus_sentences=60,
                              num_utterances=1, train_utterances=10,
                              epochs=3, seed=5)
        a = generate_audio_task(cfg)
        b = generate_audio_task(cfg)
        assert a.task.utterances[0].words == b.task.utterances[0].words
        assert a.frame_accuracy == b.frame_accuracy

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            AudioTaskConfig(vocab_size=1)
        with pytest.raises(ConfigError):
            AudioTaskConfig(num_utterances=0)
