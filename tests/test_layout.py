"""Tests for the packed binary WFST layout."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.common.errors import GraphError
from repro.wfst import ARC_BYTES, STATE_BYTES, CompiledWfst, EPSILON, Fst
from repro.wfst.layout import StateRecord


def small_compiled():
    fst = Fst()
    s0, s1, s2 = fst.add_states(3)
    fst.set_start(s0)
    fst.add_arc(s0, 1, 5, -0.5, s1)
    fst.add_arc(s0, EPSILON, 0, -0.1, s2)
    fst.add_arc(s0, 2, 0, -0.7, s1)
    fst.add_arc(s1, 3, 0, -0.2, s2)
    fst.set_final(s2, -0.05)
    return CompiledWfst.from_fst(fst)


class TestStatePacking:
    @given(
        st.integers(0, 2**32 - 1),
        st.integers(0, 2**16 - 1),
        st.integers(0, 2**16 - 1),
    )
    def test_round_trip(self, first, non_eps, eps):
        rec = StateRecord(first, non_eps, eps)
        assert CompiledWfst.unpack_state(CompiledWfst.pack_state(rec)) == rec

    def test_fits_64_bits(self):
        packed = CompiledWfst.pack_state(
            StateRecord(2**32 - 1, 2**16 - 1, 2**16 - 1)
        )
        assert 0 <= packed < 2**64

    def test_overflow_rejected(self):
        with pytest.raises(GraphError):
            CompiledWfst.pack_state(StateRecord(2**32, 0, 0))
        with pytest.raises(GraphError):
            CompiledWfst.pack_state(StateRecord(0, 2**16, 0))


class TestArcPacking:
    @given(
        st.integers(0, 2**32 - 1),
        st.floats(width=32, allow_nan=False, allow_infinity=False),
        st.integers(0, 2**32 - 1),
        st.integers(0, 2**32 - 1),
    )
    def test_round_trip(self, dest, weight, ilabel, olabel):
        raw = CompiledWfst.pack_arc(dest, weight, ilabel, olabel)
        assert len(raw) == ARC_BYTES
        d, w, i, o = CompiledWfst.unpack_arc(raw)
        assert (d, i, o) == (dest, ilabel, olabel)
        assert w == pytest.approx(np.float32(weight), nan_ok=True)

    def test_wrong_size_rejected(self):
        with pytest.raises(GraphError):
            CompiledWfst.unpack_arc(b"\x00" * 8)


class TestCompiledLayout:
    def test_counts(self):
        g = small_compiled()
        assert g.num_states == 3
        assert g.num_arcs == 4

    def test_non_epsilon_arcs_stored_first(self):
        g = small_compiled()
        first, n_non_eps, n_eps = g.arc_range(0)
        assert (n_non_eps, n_eps) == (2, 1)
        labels = g.arc_ilabel[first : first + 3]
        assert labels[0] != EPSILON and labels[1] != EPSILON
        assert labels[2] == EPSILON

    def test_arcs_contiguous_per_state(self):
        g = small_compiled()
        f0, n0, e0 = g.arc_range(0)
        f1, _n1, _e1 = g.arc_range(1)
        assert f1 == f0 + n0 + e0

    def test_addresses(self):
        g = small_compiled()
        assert g.state_address(2, base=1000) == 1000 + 2 * STATE_BYTES
        assert g.arc_address(3, base=64) == 64 + 3 * ARC_BYTES

    def test_sizes(self):
        g = small_compiled()
        assert g.states_size_bytes == 3 * STATE_BYTES
        assert g.arcs_size_bytes == 4 * ARC_BYTES
        assert g.total_size_bytes == g.states_size_bytes + g.arcs_size_bytes

    def test_final_states(self):
        g = small_compiled()
        assert g.final_states() == [2]
        assert g.final_weight(2) == pytest.approx(-0.05)
        assert not g.is_final(0)

    def test_epsilon_fraction(self):
        g = small_compiled()
        assert g.epsilon_fraction() == pytest.approx(0.25)

    def test_paper_arc_record_is_128_bits(self):
        assert ARC_BYTES * 8 == 128

    def test_paper_state_record_is_64_bits(self):
        assert STATE_BYTES * 8 == 64


class TestFlatLayout:
    def test_matches_packed_records(self):
        g = small_compiled()
        flat = g.flat()
        for s in range(g.num_states):
            first, n_non_eps, n_eps = g.arc_range(s)
            assert flat.first_arc[s] == first
            assert flat.num_non_eps[s] == n_non_eps
            assert flat.num_eps[s] == n_eps
            assert flat.eps_first[s] == first + n_non_eps
            assert flat.out_degree[s] == g.out_degree(s)

    def test_arc_columns_match(self):
        g = small_compiled()
        flat = g.flat()
        assert np.array_equal(flat.arc_dest, g.arc_dest)
        assert np.array_equal(flat.arc_ilabel, g.arc_ilabel)
        assert np.array_equal(flat.arc_olabel, g.arc_olabel)
        # float32 -> float64 widening is exact.
        assert np.array_equal(
            flat.arc_weight64, g.arc_weight.astype(np.float64)
        )
        assert flat.arc_weight64.dtype == np.float64
        assert flat.arc_dest.dtype == np.int64

    def test_cached_and_shared(self):
        g = small_compiled()
        assert g.flat() is g.flat()

    def test_arrays_read_only(self):
        g = small_compiled()
        flat = g.flat()
        with pytest.raises(ValueError):
            flat.first_arc[0] = 1
        with pytest.raises(ValueError):
            flat.arc_weight64[0] = 0.0
        with pytest.raises(ValueError):
            flat.final_weights[0] = 0.0
        # The flat view must not alias the graph's own (mutable) array.
        assert flat.final_weights is not g.final_weights

    def test_sizes(self):
        g = small_compiled()
        flat = g.flat()
        assert flat.num_states == g.num_states
        assert flat.num_arcs == g.num_arcs
