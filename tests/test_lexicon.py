"""Tests for the phone inventory and lexicon generation."""

import pytest

from repro.common.errors import ConfigError
from repro.lexicon import (
    DEFAULT_PHONES,
    PhoneSet,
    SILENCE_PHONE,
    generate_lexicon,
)


class TestPhoneSet:
    def test_ids_start_at_one(self):
        ps = PhoneSet()
        assert min(ps.ids()) == 1
        assert max(ps.ids()) == ps.num_phones

    def test_silence_always_present(self):
        ps = PhoneSet(["aa", "b"])
        assert SILENCE_PHONE in ps.symbols()

    def test_symbol_round_trip(self):
        ps = PhoneSet()
        for symbol in DEFAULT_PHONES:
            assert ps.symbol_of(ps.id_of(symbol)) == symbol

    def test_unknown_symbol_raises(self):
        with pytest.raises(ConfigError):
            PhoneSet().id_of("qq")

    def test_out_of_range_id_raises(self):
        ps = PhoneSet()
        with pytest.raises(ConfigError):
            ps.symbol_of(0)
        with pytest.raises(ConfigError):
            ps.symbol_of(ps.num_phones + 1)

    def test_duplicate_phones_rejected(self):
        with pytest.raises(ConfigError):
            PhoneSet(["aa", "aa"])

    def test_non_silence_ids_excludes_silence(self):
        ps = PhoneSet()
        assert ps.silence_id not in ps.non_silence_ids()


class TestGenerateLexicon:
    def test_vocab_size(self):
        lex = generate_lexicon(50, seed=1)
        assert lex.vocab_size == 50

    def test_pronunciations_unique(self):
        lex = generate_lexicon(200, seed=2)
        assert len(set(lex.pronunciations)) == 200

    def test_pronunciation_lengths_in_range(self):
        lex = generate_lexicon(100, seed=3, min_phones=3, max_phones=5)
        assert all(3 <= len(p) <= 5 for p in lex.pronunciations)

    def test_no_silence_inside_words(self):
        lex = generate_lexicon(100, seed=4)
        sil = lex.phones.silence_id
        assert all(sil not in p for p in lex.pronunciations)

    def test_deterministic(self):
        a = generate_lexicon(30, seed=9)
        b = generate_lexicon(30, seed=9)
        assert a.pronunciations == b.pronunciations

    def test_word_id_round_trip(self):
        lex = generate_lexicon(10, seed=5)
        for wid in lex.word_ids():
            assert lex.word_id(lex.word_of(wid)) == wid

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            generate_lexicon(0)
        with pytest.raises(ConfigError):
            generate_lexicon(10, min_phones=5, max_phones=3)

    def test_word_id_out_of_range(self):
        lex = generate_lexicon(5, seed=6)
        with pytest.raises(ConfigError):
            lex.pronunciation(6)
        with pytest.raises(ConfigError):
            lex.word_of(0)
