"""Tests for deterministic RNG streams."""

from repro.common.rng import make_rng


def test_same_seed_same_stream_reproduces():
    a = make_rng(42, "x").integers(0, 1 << 30, size=16)
    b = make_rng(42, "x").integers(0, 1 << 30, size=16)
    assert (a == b).all()


def test_different_streams_diverge():
    a = make_rng(42, "x").integers(0, 1 << 30, size=16)
    b = make_rng(42, "y").integers(0, 1 << 30, size=16)
    assert (a != b).any()


def test_different_seeds_diverge():
    a = make_rng(1, "x").integers(0, 1 << 30, size=16)
    b = make_rng(2, "x").integers(0, 1 << 30, size=16)
    assert (a != b).any()


def test_empty_stream_label_is_valid():
    assert make_rng(7).random() == make_rng(7, "").random()
