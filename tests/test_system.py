"""Tests for the whole-pipeline system model and the experiment harness."""

import pytest

from repro.common.errors import ConfigError
from repro.datasets import SyntheticGraphConfig
from repro.energy.report import EnergyReport, PlatformResult
from repro.system import (
    AsrSystemModel,
    make_memory_workload,
    run_platform_comparison,
)


class TestAsrSystemModel:
    def test_hybrid_throughput_is_bottleneck_stage(self):
        model = AsrSystemModel(batch_frames=100)
        hybrid = model.hybrid_seconds(
            total_frames=1000,
            dnn_seconds_per_frame=2e-4,
            accel_search_seconds_per_frame=1e-4,
        )
        # Every step advances at the DNN's pace; the last search drains.
        assert hybrid == pytest.approx(10 * 100 * 2e-4 + 100 * 1e-4)

    def test_gpu_only_is_sum_of_stages(self):
        model = AsrSystemModel()
        total = model.gpu_only_seconds(500, 1e-4, 3e-4)
        assert total == pytest.approx(500 * 4e-4)

    def test_hybrid_speedup_improves_on_serial(self):
        model = AsrSystemModel(batch_frames=100)
        speedup = model.hybrid_speedup(
            total_frames=2000,
            dnn_seconds_per_frame=1e-4,
            gpu_search_seconds_per_frame=6e-4,
            accel_search_seconds_per_frame=3.5e-4,
        )
        assert speedup > 1.5

    def test_transfer_hidden_by_double_buffer(self):
        model = AsrSystemModel(batch_frames=100, pcie_gbs=12.0)
        slow = model.hybrid_seconds(1000, 2e-4, 1e-4, score_bytes_per_frame=0)
        with_dma = model.hybrid_seconds(
            1000, 2e-4, 1e-4, score_bytes_per_frame=4 * 3500
        )
        # 14 KB per frame over PCIe is far below the DNN stage time.
        assert with_dma == pytest.approx(slow)

    def test_invalid_inputs_rejected(self):
        model = AsrSystemModel()
        with pytest.raises(ConfigError):
            model.hybrid_seconds(0, 1e-4, 1e-4)
        with pytest.raises(ConfigError):
            model.transfer_seconds(-1)


class TestEnergyReport:
    def _report(self):
        return EnergyReport(
            [
                PlatformResult("GPU", decode_seconds=2.0, energy_j=100.0, speech_seconds=10.0),
                PlatformResult("ASIC", decode_seconds=1.0, energy_j=0.5, speech_seconds=10.0),
            ]
        )

    def test_speedup(self):
        rep = self._report()
        assert rep.speedup_vs("GPU")["ASIC"] == pytest.approx(2.0)

    def test_energy_reduction(self):
        rep = self._report()
        assert rep.energy_reduction_vs("GPU")["ASIC"] == pytest.approx(200.0)

    def test_realtime_flag(self):
        rep = self._report()
        rows = {r["platform"]: r for r in rep.rows()}
        assert rows["ASIC"]["realtime"]

    def test_metrics_per_speech_second(self):
        result = PlatformResult("X", 2.0, 100.0, 10.0)
        assert result.decode_time_per_speech_second == pytest.approx(0.2)
        assert result.energy_per_speech_second == pytest.approx(10.0)
        assert result.avg_power_w == pytest.approx(50.0)


class TestExperimentHarness:
    @pytest.fixture(scope="class")
    def workload(self):
        return make_memory_workload(
            num_utterances=1,
            frames_per_utterance=10,
            beam=6.0,
            max_active=300,
            seed=2,
            graph_config=SyntheticGraphConfig(
                num_states=3000, num_phones=50, seed=2
            ),
        )

    def test_all_platforms_present(self, workload):
        cmp = run_platform_comparison(workload)
        assert set(cmp.runs) == {
            "CPU", "GPU", "ASIC", "ASIC+State", "ASIC+Arc", "ASIC+State&Arc",
        }

    def test_consistency_check_is_enforced(self, workload):
        # The run above passed with check_consistency=True by default;
        # all ASIC configs matched the reference likelihood.
        cmp = run_platform_comparison(
            workload, include=["ASIC"], check_consistency=True
        )
        assert cmp.runs["ASIC"].sim_stats is not None

    def test_subset_selection(self, workload):
        cmp = run_platform_comparison(
            workload, include=["CPU", "ASIC"], check_consistency=False
        )
        assert set(cmp.runs) == {"CPU", "ASIC"}

    def test_energies_positive(self, workload):
        cmp = run_platform_comparison(workload, include=["CPU", "GPU", "ASIC"])
        for run in cmp.runs.values():
            assert run.energy_j > 0
            assert run.decode_seconds > 0

    def test_workload_stable_active_set(self, workload):
        cmp = run_platform_comparison(workload, include=["CPU"])
        active = cmp.runs["CPU"].search.active_tokens_per_frame
        assert max(active) <= 300
