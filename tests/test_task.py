"""End-to-end tests for generated ASR tasks."""

import pytest

from repro.common.errors import ConfigError
from repro.datasets import TaskConfig, generate_task
from repro.decoder import BeamSearchConfig, ViterbiDecoder, word_error_rate


class TestTaskStructure:
    def test_graph_is_nonempty(self, small_task):
        assert small_task.graph.num_states > small_task.config.vocab_size
        assert small_task.graph.num_arcs > small_task.graph.num_states

    def test_epsilon_fraction_positive_but_minor(self, small_task):
        frac = small_task.graph.epsilon_fraction()
        assert 0.0 < frac < 0.5

    def test_utterance_count(self, small_task):
        assert len(small_task.utterances) == small_task.config.num_utterances

    def test_scores_align_with_frames(self, small_task):
        for utt in small_task.utterances:
            assert utt.scores.num_frames == utt.alignment.total_frames
            assert utt.duration_seconds == pytest.approx(
                utt.num_frames * 0.01
            )

    def test_transcripts_resolve(self, small_task):
        words = small_task.transcript(small_task.utterances[0])
        assert all(isinstance(w, str) for w in words)

    def test_deterministic(self):
        cfg = TaskConfig(vocab_size=30, corpus_sentences=100, num_utterances=2, seed=5)
        a, b = generate_task(cfg), generate_task(cfg)
        assert (a.graph.states_packed == b.graph.states_packed).all()
        assert a.utterances[0].words == b.utterances[0].words

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            TaskConfig(vocab_size=1)
        with pytest.raises(ConfigError):
            TaskConfig(num_utterances=0)


class TestDecodability:
    def test_low_wer_on_generated_utterances(self, small_task):
        """The synthetic task must be accurately decodable -- this is the
        functional sanity check of the whole front-to-back pipeline."""
        decoder = ViterbiDecoder(small_task.graph, BeamSearchConfig(beam=14.0))
        total = 0.0
        for utt in small_task.utterances:
            result = decoder.decode(utt.scores)
            total += word_error_rate(utt.words, result.words)
        assert total / len(small_task.utterances) < 0.25

    def test_results_reach_final_states(self, small_task):
        decoder = ViterbiDecoder(small_task.graph, BeamSearchConfig(beam=14.0))
        result = decoder.decode(small_task.utterances[0].scores)
        assert result.reached_final
