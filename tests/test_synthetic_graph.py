"""Tests for the Kaldi-like random graph generator."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.datasets import SyntheticGraphConfig, generate_kaldi_like_graph
from repro.wfst import EPSILON


@pytest.fixture(scope="module")
def config():
    return SyntheticGraphConfig(num_states=5000, num_phones=40, seed=9)


@pytest.fixture(scope="module")
def graph(config):
    return generate_kaldi_like_graph(config)


class TestStatistics:
    def test_state_count(self, graph, config):
        assert graph.num_states == config.num_states

    def test_arc_state_ratio_near_kaldi(self, graph, config):
        """Paper: 34.8M arcs / 13.7M states = 2.55."""
        ratio = graph.num_arcs / graph.num_states
        assert 2.0 < ratio < 3.2

    def test_epsilon_fraction_near_kaldi(self, graph, config):
        """Paper: 11.5% of Kaldi's arcs are epsilon."""
        assert abs(graph.epsilon_fraction() - 0.115) < 0.03

    def test_degree_tail_bounded(self, graph, config):
        degrees = [graph.out_degree(s) for s in range(graph.num_states)]
        assert max(degrees) <= config.max_arcs_per_state

    def test_most_states_have_few_arcs(self, graph):
        """Figure 7: ~97% of states have 15 or fewer arcs."""
        degrees = np.array([graph.out_degree(s) for s in range(graph.num_states)])
        assert (degrees <= 15).mean() > 0.9

    def test_phone_labels_in_range(self, graph, config):
        non_eps = graph.arc_ilabel[graph.arc_ilabel != EPSILON]
        assert non_eps.min() >= 1
        assert non_eps.max() <= config.num_phones

    def test_weights_are_log_probs(self, graph):
        assert (graph.arc_weight <= 0).all()

    def test_final_states_exist(self, graph):
        assert len(graph.final_states()) >= 1


class TestStructure:
    def test_epsilon_subgraph_is_acyclic(self, graph):
        """Epsilon arcs must point strictly forward (decodability)."""
        for s in range(graph.num_states):
            first, n_non_eps, n_eps = graph.arc_range(s)
            for a in range(first + n_non_eps, first + n_non_eps + n_eps):
                if graph.arc_ilabel[a] == EPSILON:
                    assert int(graph.arc_dest[a]) > s

    def test_non_epsilon_arcs_first(self, graph):
        for s in range(0, graph.num_states, 97):
            first, n_non_eps, n_eps = graph.arc_range(s)
            labels = graph.arc_ilabel[first : first + n_non_eps + n_eps]
            assert (labels[:n_non_eps] != EPSILON).all()
            assert (labels[n_non_eps:] == EPSILON).all()

    def test_deterministic(self, config):
        a = generate_kaldi_like_graph(config)
        b = generate_kaldi_like_graph(config)
        assert (a.states_packed == b.states_packed).all()
        assert (a.arc_dest == b.arc_dest).all()

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            SyntheticGraphConfig(num_states=1)
        with pytest.raises(ConfigError):
            SyntheticGraphConfig(num_states=10, epsilon_fraction=1.5)
