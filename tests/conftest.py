"""Shared fixtures: small tasks and graphs reused across the test suite."""

import pytest

from repro.accel import AcceleratorConfig
from repro.datasets import (
    SyntheticGraphConfig,
    TaskConfig,
    generate_kaldi_like_graph,
    generate_task,
)
from repro.wfst import sort_states_by_arc_count


@pytest.fixture(scope="session")
def small_task():
    """A complete ASR task small enough for exhaustive checks."""
    return generate_task(
        TaskConfig(
            vocab_size=60,
            corpus_sentences=300,
            num_utterances=4,
            utterance_words=4,
            seed=11,
        )
    )


@pytest.fixture(scope="session")
def small_graph(small_task):
    return small_task.graph


@pytest.fixture(scope="session")
def small_sorted_graph(small_graph):
    return sort_states_by_arc_count(small_graph)


@pytest.fixture(scope="session")
def synthetic_graph():
    """A mid-size Kaldi-like random graph for memory-system tests."""
    return generate_kaldi_like_graph(
        SyntheticGraphConfig(num_states=3000, num_phones=30, seed=7)
    )


@pytest.fixture(scope="session")
def table1_config():
    return AcceleratorConfig()
