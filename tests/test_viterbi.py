"""Tests for the reference Viterbi beam-search decoder.

Includes a hand-built two-word recognition network in the spirit of the
paper's Figure 2 ("low" vs "less"), with likelihoods verified against
Equation 1 by hand.
"""

import math

import numpy as np
import pytest

from repro.common.errors import ConfigError, DecodeError
from repro.acoustic.scorer import AcousticScores
from repro.decoder import BeamSearchConfig, ViterbiDecoder
from repro.wfst import CompiledWfst, EPSILON, Fst

# Phone ids.
L, OW, EH, S = 1, 2, 3, 4
# Word ids.
LOW, LESS = 1, 2


def figure2_graph():
    """A two-word WFST: low = [l, ow], less = [l, eh, s]."""
    fst = Fst()
    s0, s1, s2, s3, s4, s5 = fst.add_states(6)
    fst.set_start(s0)
    fst.add_arc(s0, L, LOW, math.log(0.6), s1)
    fst.add_arc(s1, OW, EPSILON, 0.0, s2)
    fst.set_final(s2, 0.0)
    fst.add_arc(s0, L, LESS, math.log(0.4), s3)
    fst.add_arc(s3, EH, EPSILON, 0.0, s4)
    fst.add_arc(s4, S, EPSILON, 0.0, s5)
    fst.set_final(s5, 0.0)
    return CompiledWfst.from_fst(fst)


def scores_for(rows):
    """Score matrix from rows of per-phone linear probabilities."""
    matrix = np.full((len(rows), 5), -1e9)
    for f, row in enumerate(rows):
        for phone, prob in row.items():
            matrix[f, phone] = math.log(prob)
    return AcousticScores(matrix)


class TestFigure2Example:
    def test_low_wins_two_frames(self):
        graph = figure2_graph()
        scores = scores_for([{L: 0.9, OW: 0.05, EH: 0.05, S: 0.05},
                             {L: 0.05, OW: 0.7, EH: 0.3, S: 0.05}])
        result = ViterbiDecoder(graph, BeamSearchConfig(beam=20.0)).decode(scores)
        assert result.words == (LOW,)
        # Equation 1 by hand: 1.0 * 0.6 * 0.9 * 1.0 * 0.7.
        assert result.log_likelihood == pytest.approx(
            math.log(1.0 * 0.6 * 0.9 * 0.7)
        )
        assert result.reached_final

    def test_less_wins_three_frames(self):
        graph = figure2_graph()
        scores = scores_for([
            {L: 0.9, OW: 0.05, EH: 0.05, S: 0.05},
            {L: 0.05, OW: 0.1, EH: 0.8, S: 0.05},
            {L: 0.05, OW: 0.1, EH: 0.05, S: 0.8},
        ])
        result = ViterbiDecoder(graph, BeamSearchConfig(beam=20.0)).decode(scores)
        assert result.words == (LESS,)
        assert result.log_likelihood == pytest.approx(
            math.log(0.4 * 0.9 * 0.8 * 0.8)
        )

    def test_beam_prunes_weak_branch(self):
        """With a tight beam the 'less' branch dies at frame 2."""
        graph = figure2_graph()
        scores = scores_for([{L: 0.9, OW: 0.05, EH: 0.05, S: 0.05},
                             {L: 0.05, OW: 0.9, EH: 0.01, S: 0.05}])
        # At frame 2 the branches differ by log(0.6/0.4) = 0.405, so a
        # 0.3-wide beam prunes the "less" token (cf. the paper's frame-2
        # pruning of tokens 1 and 4).
        tight = ViterbiDecoder(graph, BeamSearchConfig(beam=0.3)).decode(scores)
        assert tight.words == (LOW,)
        assert tight.stats.tokens_pruned > 0

    def test_best_predecessor_selected(self):
        """Multiple arcs into one state: the max survives (Equation 1)."""
        fst = Fst()
        s0, s1, s2 = fst.add_states(3)
        fst.set_start(s0)
        fst.add_arc(s0, L, LOW, math.log(0.9), s1)
        fst.add_arc(s0, L, LESS, math.log(0.1), s1)
        fst.add_arc(s1, OW, EPSILON, 0.0, s2)
        fst.set_final(s2)
        graph = CompiledWfst.from_fst(fst)
        scores = scores_for([{L: 0.5}, {OW: 0.5}])
        result = ViterbiDecoder(graph, BeamSearchConfig(beam=30.0)).decode(scores)
        assert result.words == (LOW,)


class TestEpsilonHandling:
    def test_epsilon_arcs_consume_no_frame(self):
        # 0 --a--> 1 --eps--> 2 --b--> 3 : decodes in exactly two frames.
        fst = Fst()
        s0, s1, s2, s3 = fst.add_states(4)
        fst.set_start(s0)
        fst.add_arc(s0, L, LOW, 0.0, s1)
        fst.add_arc(s1, EPSILON, EPSILON, math.log(0.5), s2)
        fst.add_arc(s2, OW, EPSILON, 0.0, s3)
        fst.set_final(s3)
        graph = CompiledWfst.from_fst(fst)
        scores = scores_for([{L: 0.8}, {OW: 0.8}])
        result = ViterbiDecoder(graph, BeamSearchConfig(beam=30.0)).decode(scores)
        assert result.words == (LOW,)
        assert result.log_likelihood == pytest.approx(math.log(0.8 * 0.5 * 0.8))
        assert result.stats.epsilon_arcs_processed >= 1

    def test_epsilon_chain_propagates_transitively(self):
        fst = Fst()
        states = fst.add_states(5)
        fst.set_start(states[0])
        fst.add_arc(states[0], L, 0, 0.0, states[1])
        fst.add_arc(states[1], EPSILON, 0, -0.1, states[2])
        fst.add_arc(states[2], EPSILON, 0, -0.1, states[3])
        fst.add_arc(states[3], OW, 0, 0.0, states[4])
        fst.set_final(states[4])
        graph = CompiledWfst.from_fst(fst)
        scores = scores_for([{L: 0.9}, {OW: 0.9}])
        result = ViterbiDecoder(graph, BeamSearchConfig(beam=30.0)).decode(scores)
        assert result.reached_final


class TestPruning:
    def test_max_active_caps_tokens(self, small_task):
        capped = ViterbiDecoder(
            small_task.graph, BeamSearchConfig(beam=14.0, max_active=20)
        )
        result = capped.decode(small_task.utterances[0].scores)
        assert max(result.stats.active_tokens_per_frame) <= 20

    def test_wider_beam_keeps_more_tokens(self, small_task):
        scores = small_task.utterances[0].scores
        narrow = ViterbiDecoder(small_task.graph, BeamSearchConfig(beam=4.0))
        wide = ViterbiDecoder(small_task.graph, BeamSearchConfig(beam=16.0))
        n = narrow.decode(scores).stats.mean_active_tokens
        w = wide.decode(scores).stats.mean_active_tokens
        assert w >= n

    def test_wider_beam_never_worse_likelihood(self, small_task):
        scores = small_task.utterances[0].scores
        narrow = ViterbiDecoder(small_task.graph, BeamSearchConfig(beam=6.0))
        wide = ViterbiDecoder(small_task.graph, BeamSearchConfig(beam=18.0))
        assert (
            wide.decode(scores).log_likelihood
            >= narrow.decode(scores).log_likelihood - 1e-9
        )


class TestErrors:
    def test_empty_scores_rejected(self, small_graph):
        decoder = ViterbiDecoder(small_graph)
        with pytest.raises(DecodeError):
            decoder.decode(AcousticScores(np.zeros((0, 5))))

    def test_invalid_beam_rejected(self):
        with pytest.raises(ConfigError):
            BeamSearchConfig(beam=0.0)
        with pytest.raises(ConfigError):
            BeamSearchConfig(beam=5.0, max_active=-1)


class TestStats:
    def test_counters_consistent(self, small_task):
        decoder = ViterbiDecoder(small_task.graph, BeamSearchConfig(beam=14.0))
        result = decoder.decode(small_task.utterances[0].scores)
        st = result.stats
        assert st.frames == small_task.utterances[0].num_frames
        assert st.states_expanded == len(st.visited_state_degrees)
        assert st.arcs_processed > 0
        assert st.total_token_writes == st.tokens_created + st.tokens_updated
        assert len(st.active_tokens_per_frame) == st.frames
