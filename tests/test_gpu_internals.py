"""Unit tests for GPU decoder internals and harness helpers."""

import numpy as np
import pytest

from repro.accel.stats import SimStats
from repro.decoder.kernel import _csr_gather
from repro.decoder.result import SearchStats
from repro.gpu.decoder import GpuWorkload
from repro.system.experiment import accelerator_configs
from repro.accel import AcceleratorConfig


class TestBulkArcGather:
    """The kernel's CSR arc gather (the CUDA-gather primitive the GPU
    expansion kernel models, and the bulk gather of every vectorized
    engine)."""

    @pytest.fixture(scope="class")
    def flat(self, small_graph):
        return small_graph.flat()

    def test_empty_state_set(self):
        arcs, src = _csr_gather(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert len(arcs) == 0 and len(src) == 0

    def test_counts_match_state_records(self, flat, small_graph):
        states = np.arange(min(20, small_graph.num_states), dtype=np.int64)
        arcs, src = _csr_gather(
            flat.first_arc[states], flat.num_non_eps[states]
        )
        expected = int(flat.num_non_eps[states].sum())
        assert len(arcs) == expected
        assert len(src) == expected

    def test_arcs_fall_in_state_ranges(self, flat, small_graph):
        states = np.arange(min(20, small_graph.num_states), dtype=np.int64)
        arcs, src = _csr_gather(
            flat.first_arc[states], flat.num_non_eps[states]
        )
        for a, row in zip(arcs, src):
            first, n_non_eps, _ = small_graph.arc_range(int(states[row]))
            assert first <= a < first + n_non_eps


class TestStatsMerge:
    def test_search_stats_merge(self):
        a = SearchStats(frames=2, arcs_processed=10,
                        active_tokens_per_frame=[1, 2])
        b = SearchStats(frames=3, arcs_processed=5,
                        active_tokens_per_frame=[3])
        merged = SearchStats.merge([a, b])
        assert merged.frames == 5
        assert merged.arcs_processed == 15
        assert merged.active_tokens_per_frame == [1, 2, 3]

    def test_sim_stats_merge(self):
        a = SimStats(cycles=100, frames=1)
        a.arc_cache.accesses = 10
        a.arc_cache.misses = 4
        a.traffic.add("arcs", 128, write=False)
        b = SimStats(cycles=50, frames=2)
        b.arc_cache.accesses = 6
        b.traffic.add("arcs", 64, write=True)
        merged = SimStats.merge([a, b])
        assert merged.cycles == 150
        assert merged.arc_cache.accesses == 16
        assert merged.arc_cache.miss_ratio == pytest.approx(0.25)
        assert merged.traffic.region_bytes("arcs") == 192

    def test_merge_empty(self):
        assert SimStats.merge([]).cycles == 0
        assert SearchStats.merge([]).frames == 0


class TestHarnessHelpers:
    def test_accelerator_configs_cover_paper(self):
        configs = accelerator_configs(AcceleratorConfig())
        assert set(configs) == {
            "ASIC", "ASIC+State", "ASIC+Arc", "ASIC+State&Arc",
        }
        assert not configs["ASIC"].prefetch_enabled
        assert configs["ASIC+Arc"].prefetch_enabled
        assert configs["ASIC+State"].state_direct_enabled
        both = configs["ASIC+State&Arc"]
        assert both.prefetch_enabled and both.state_direct_enabled

    def test_gpu_workload_defaults_zero(self):
        work = GpuWorkload()
        assert work.arcs_expanded == 0
        assert work.kernel_launches == 0


class TestEnergyBreakdown:
    def test_breakdown_covers_all_components(self, small_task):
        from repro.accel import AcceleratorSimulator
        from repro.energy import AcceleratorEnergyModel

        sim = AcceleratorSimulator(small_task.graph, beam=14.0)
        result = sim.decode(small_task.utterances[0].scores)
        model = AcceleratorEnergyModel()
        breakdown = model.energy(AcceleratorConfig(), result.stats)
        expected_keys = {
            "state_cache", "arc_cache", "token_cache", "hash",
            "acoustic_buffer", "fp_units", "dram",
        }
        assert set(breakdown.dynamic_j) == expected_keys
        assert breakdown.static_j > 0
        assert breakdown.total_j == pytest.approx(
            breakdown.static_j + sum(breakdown.dynamic_j.values())
        )
