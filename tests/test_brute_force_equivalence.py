"""Property-based validation of the entire decoder stack.

Random tiny WFSTs and random score matrices are decoded by four
independent implementations -- the exhaustive brute-force oracle, the
reference beam decoder (with an effectively-infinite beam), the GPU
data-parallel decoder, and the cycle-accurate accelerator simulator --
which must all find the same best-path likelihood.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.accel import AcceleratorConfig, AcceleratorSimulator
from repro.acoustic.scorer import AcousticScores
from repro.common.errors import DecodeError
from repro.decoder import BeamSearchConfig, ViterbiDecoder
from repro.decoder.brute_force import brute_force_best_path
from repro.gpu import GpuViterbiDecoder
from repro.wfst import CompiledWfst, EPSILON, Fst

WIDE_BEAM = BeamSearchConfig(beam=1e6)
NUM_PHONES = 4


def make_random_fst(rng: np.random.Generator) -> CompiledWfst:
    """A small random epsilon-acyclic WFST that reaches a final state."""
    n_states = int(rng.integers(3, 7))
    fst = Fst()
    states = fst.add_states(n_states)
    fst.set_start(states[0])
    fst.set_final(states[-1], float(-rng.uniform(0, 1)))
    # A guaranteed backbone of non-epsilon arcs keeps the FST decodable.
    for i in range(n_states - 1):
        fst.add_arc(
            states[i],
            int(rng.integers(1, NUM_PHONES + 1)),
            int(rng.integers(0, 3)),
            float(-rng.uniform(0, 2)),
            states[i + 1],
        )
    # Random extra arcs; epsilon arcs always point forward (acyclicity).
    for _ in range(int(rng.integers(2, 10))):
        src = int(rng.integers(0, n_states))
        dst = int(rng.integers(0, n_states))
        if rng.random() < 0.25 and src < n_states - 1:
            dst = int(rng.integers(src + 1, n_states))
            fst.add_arc(src, EPSILON, int(rng.integers(0, 3)),
                        float(-rng.uniform(0, 2)), dst)
        else:
            fst.add_arc(src, int(rng.integers(1, NUM_PHONES + 1)),
                        int(rng.integers(0, 3)),
                        float(-rng.uniform(0, 2)), dst)
    return CompiledWfst.from_fst(fst)


def make_scores(rng: np.random.Generator, frames: int) -> AcousticScores:
    matrix = -rng.uniform(0.1, 5.0, size=(frames, NUM_PHONES + 1))
    matrix[:, 0] = -1e9
    return AcousticScores(matrix)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), frames=st.integers(1, 5))
def test_all_decoders_agree_with_brute_force(seed, frames):
    rng = np.random.default_rng(seed)
    graph = make_random_fst(rng)
    scores = make_scores(rng, frames)

    try:
        words, score = brute_force_best_path(graph, scores)
    except DecodeError:
        # No complete path for this frame count: the beam decoders must
        # also fail to reach a final state.
        ref = _try_reference(graph, scores)
        assert ref is None or not ref.reached_final
        return

    ref = ViterbiDecoder(graph, WIDE_BEAM).decode(scores)
    assert ref.reached_final
    assert ref.log_likelihood == pytest.approx(score, abs=1e-6)

    gpu, _work = GpuViterbiDecoder(graph, beam=1e6).decode(scores)
    assert gpu.log_likelihood == pytest.approx(score, abs=1e-6)

    sim = AcceleratorSimulator(graph, AcceleratorConfig(), beam=1e6)
    accel = sim.decode(scores)
    assert accel.log_likelihood == pytest.approx(score, abs=1e-6)

    # Word sequences agree wherever the best path is unique; likelihood
    # equality above is the hard guarantee.
    assert ref.words == accel.words


def _try_reference(graph, scores):
    try:
        return ViterbiDecoder(graph, WIDE_BEAM).decode(scores)
    except DecodeError:
        return None


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_beam_search_is_admissible_when_wide(seed):
    """A wide beam must find the optimum; a narrow beam never a better one."""
    rng = np.random.default_rng(seed)
    graph = make_random_fst(rng)
    scores = make_scores(rng, 3)
    try:
        _words, best = brute_force_best_path(graph, scores)
    except DecodeError:
        return
    wide = ViterbiDecoder(graph, WIDE_BEAM).decode(scores)
    assert wide.log_likelihood == pytest.approx(best, abs=1e-6)
    try:
        narrow = ViterbiDecoder(graph, BeamSearchConfig(beam=1.0)).decode(
            scores
        )
    except DecodeError:
        return  # aggressive pruning may legally kill the search entirely
    if narrow.reached_final:
        # A final-state path found under pruning can never beat the optimum.
        assert narrow.log_likelihood <= best + 1e-9
