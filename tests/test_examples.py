"""Smoke tests for the runnable examples (deliverable: they must run).

The heavyweight sweeps are exercised with reduced parameters via their
importable helper functions; the two fastest examples run whole.
"""

import runpy
import sys

import pytest


def _run_example(name, monkeypatch, argv=None):
    monkeypatch.setattr(sys, "argv", [name] + (argv or []))
    runpy.run_path(f"examples/{name}", run_name="__main__")


@pytest.mark.slow
def test_quickstart_runs(monkeypatch, capsys):
    _run_example("quickstart.py", monkeypatch)
    out = capsys.readouterr().out
    assert "Mean WER" in out
    assert "real-time" in out


def test_streaming_assistant_runs(monkeypatch, capsys):
    _run_example("streaming_assistant.py", monkeypatch)
    out = capsys.readouterr().out
    assert "keeps up: True" in out


def test_batch_serving_runs(monkeypatch, capsys):
    _run_example("batch_serving.py", monkeypatch)
    out = capsys.readouterr().out
    assert "word-identical output" in out
    assert "concurrent real-time streams" in out


def test_live_sessions_runs(monkeypatch, capsys):
    _run_example("live_sessions.py", monkeypatch)
    out = capsys.readouterr().out
    assert "joined" in out
    assert "so far" in out  # partial hypotheses were emitted
    assert "streamed == one-shot offline" in out


def test_voice_commands_helpers(monkeypatch):
    """Exercise the voice-command pipeline pieces at reduced size."""
    sys.path.insert(0, "examples")
    try:
        import voice_commands as vc
    finally:
        sys.path.pop(0)
    lexicon, graph = vc.build_task()
    assert graph.num_states > 0
    assert lexicon.vocab_size == len(vc.COMMANDS)


def test_language_flexibility_unigram_builder():
    sys.path.insert(0, "examples")
    try:
        import language_flexibility as lf
    finally:
        sys.path.pop(0)
    from repro.lm import train_ngram

    model = train_ngram([[1, 2], [2, 1]], vocab_size=2)
    fst = lf.build_unigram_fst(model)
    assert fst.num_states == 1
    assert fst.num_arcs == 2
